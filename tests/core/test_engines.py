import pytest

from repro.core import (
    CenterBagEngine,
    FundamentalCycleEngine,
    GreedyPeelingEngine,
    StrongGreedyEngine,
    TreeCentroidEngine,
    auto_engine,
)
from repro.generators import (
    complete_bipartite,
    grid_2d,
    k_tree,
    mesh_with_universal,
    outerplanar_graph,
    random_delaunay_graph,
    random_planar_graph,
    random_regular_graph,
    random_tree,
    series_parallel_graph,
)
from repro.graphs import Graph
from repro.util.errors import GraphError


def assert_valid(engine, graph, max_paths=None):
    sep = engine.find_separator(graph)
    sep.validate(graph)
    if max_paths is not None:
        assert sep.num_paths <= max_paths
    return sep


class TestTreeCentroid:
    def test_path_graph_centroid(self):
        g = Graph([(i, i + 1) for i in range(10)])
        sep = assert_valid(TreeCentroidEngine(), g, max_paths=1)
        # Centroid of a path of 11 vertices is the middle.
        assert sep.vertices() == {5}

    def test_star_centroid_is_hub(self):
        g = Graph([(0, i) for i in range(1, 20)])
        sep = assert_valid(TreeCentroidEngine(), g, max_paths=1)
        assert sep.vertices() == {0}

    def test_random_trees_one_path(self):
        for seed in range(5):
            g = random_tree(71, seed=seed)
            assert_valid(TreeCentroidEngine(), g, max_paths=1)

    def test_weighted_tree(self):
        g = random_tree(64, weight_range=(1.0, 10.0), seed=3)
        assert_valid(TreeCentroidEngine(), g, max_paths=1)

    def test_cycle_rejected(self):
        g = Graph([(0, 1), (1, 2), (0, 2)])
        with pytest.raises(GraphError):
            TreeCentroidEngine().find_separator(g)

    def test_single_vertex(self):
        g = Graph()
        g.add_vertex("v")
        sep = TreeCentroidEngine().find_separator(g)
        assert sep.vertices() == {"v"}

    def test_already_balanced_within(self):
        # Two singleton components: nothing to split.
        g = Graph()
        g.add_vertex(0)
        g.add_vertex(1)
        sep = TreeCentroidEngine().find_separator(g)
        assert sep.num_paths == 0


class TestCenterBag:
    def test_ktree_strong_small_separator(self):
        g, _ = k_tree(80, 3, seed=1)
        sep = assert_valid(CenterBagEngine(order="mcs"), g, max_paths=4)
        assert sep.is_strong

    def test_series_parallel_three_paths(self):
        g = series_parallel_graph(100, seed=2)
        assert_valid(CenterBagEngine(), g, max_paths=3)

    def test_outerplanar(self):
        g = outerplanar_graph(60, seed=3)
        assert_valid(CenterBagEngine(), g, max_paths=3)

    def test_invalid_order_name(self):
        with pytest.raises(ValueError):
            CenterBagEngine(order="magic")

    def test_all_single_vertex_paths(self):
        g, _ = k_tree(40, 2, seed=4)
        sep = CenterBagEngine(order="mcs").find_separator(g)
        assert all(len(p) == 1 for p in sep.all_paths())


class TestGreedyPeeling:
    @pytest.mark.parametrize(
        "maker",
        [
            lambda: grid_2d(9),
            lambda: grid_2d(8, weight_range=(1.0, 5.0), seed=1),
            lambda: random_planar_graph(90, seed=2),
            lambda: random_delaunay_graph(90, seed=3)[0],
        ],
        ids=["grid", "weighted_grid", "planar", "delaunay"],
    )
    def test_valid_and_few_paths_on_planar_families(self, maker):
        sep = assert_valid(GreedyPeelingEngine(seed=0), maker(), max_paths=8)

    def test_unweighted_grid_uses_few_paths(self):
        sep = GreedyPeelingEngine(seed=0).find_separator(grid_2d(10))
        assert sep.num_paths <= 3

    def test_deterministic_given_seed(self):
        g = random_planar_graph(60, seed=5)
        a = GreedyPeelingEngine(seed=1).find_separator(g)
        b = GreedyPeelingEngine(seed=1).find_separator(g)
        assert [p for ph in a.phases for p in ph.paths] == [
            p for ph in b.phases for p in ph.paths
        ]

    def test_max_paths_guard(self):
        g = random_regular_graph(64, 3, seed=6)
        with pytest.raises(GraphError, match="max_paths"):
            GreedyPeelingEngine(max_paths=1, seed=0).find_separator(g)

    def test_bad_candidate_count(self):
        with pytest.raises(ValueError):
            GreedyPeelingEngine(num_candidates=0)

    def test_within_subset(self):
        g = grid_2d(8)
        within = {v for v in g.vertices() if v[0] < 4}
        sep = GreedyPeelingEngine(seed=0).find_separator(g, within=within)
        sep.validate(g, within=within)

    def test_randomness_independent_of_call_order(self):
        # Per-component RNGs are derived from (seed, component), not
        # drawn from one shared stream, so the separator found for a
        # component must not depend on which components were processed
        # before it.  This is what makes a fork-based parallel build
        # reproduce the serial decomposition exactly.
        g = grid_2d(8)
        left = {v for v in g.vertices() if v[0] < 4}
        right = {v for v in g.vertices() if v[0] >= 4}

        def paths(engine, within):
            sep = engine.find_separator(g, within=within)
            return [p for ph in sep.phases for p in ph.paths]

        fresh = paths(GreedyPeelingEngine(seed=3), left)
        reused = GreedyPeelingEngine(seed=3)
        paths(reused, right)  # consume "the stream" on another component
        assert paths(reused, left) == fresh


class TestFundamentalCycle:
    def test_grid_strong_three_paths(self):
        g = grid_2d(10)
        sep = FundamentalCycleEngine(seed=0).find_separator(g)
        sep.validate(g)
        assert sep.phases[0].num_paths <= 3

    def test_delaunay(self):
        g, _ = random_delaunay_graph(120, seed=1)
        sep = FundamentalCycleEngine(seed=0).find_separator(g)
        sep.validate(g)

    def test_tree_falls_back_to_centroid(self):
        g = random_tree(40, seed=2)
        sep = FundamentalCycleEngine(seed=0).find_separator(g)
        sep.validate(g)
        assert sep.num_paths == 1

    def test_weighted_planar(self):
        g = random_planar_graph(80, weight_range=(1.0, 20.0), seed=3)
        sep = FundamentalCycleEngine(seed=0).find_separator(g)
        sep.validate(g)


class TestStrongGreedy:
    def test_single_phase_output(self):
        g = grid_2d(8)
        sep = StrongGreedyEngine(seed=0).find_separator(g)
        sep.validate(g)
        assert sep.is_strong

    def test_mesh_with_universal_needs_many_paths(self):
        # Theorem 6.3: diameter-2 graph, every shortest path has <= 3
        # vertices, so ~t/3 paths are needed for a t x t mesh.
        g = mesh_with_universal(8)
        sep = StrongGreedyEngine(seed=0).find_separator(g)
        sep.validate(g)
        assert sep.num_paths >= 8 / 3

    def test_complete_bipartite_lower_bound(self):
        # Theorem 7: K_{r, n-r} needs at least r/2 paths.
        r = 6
        g = complete_bipartite(r, 30)
        sep = StrongGreedyEngine(seed=0).find_separator(g)
        sep.validate(g)
        assert sep.num_paths >= r / 2

    def test_max_paths_guard(self):
        g = mesh_with_universal(12)
        with pytest.raises(GraphError):
            StrongGreedyEngine(max_paths=1, seed=0).find_separator(g)


class TestAutoEngine:
    def test_tree_gets_centroid(self):
        engine = auto_engine(random_tree(50, seed=1))
        assert isinstance(engine, TreeCentroidEngine)

    def test_low_treewidth_gets_center_bag(self):
        engine = auto_engine(series_parallel_graph(60, seed=2))
        assert isinstance(engine, CenterBagEngine)

    def test_grid_gets_greedy(self):
        engine = auto_engine(grid_2d(12))
        assert isinstance(engine, GreedyPeelingEngine)

    def test_chosen_engine_produces_valid_separator(self):
        for maker in (
            lambda: random_tree(40, seed=3),
            lambda: series_parallel_graph(40, seed=4),
            lambda: grid_2d(8),
        ):
            g = maker()
            sep = auto_engine(g).find_separator(g)
            sep.validate(g)


class TestSection52WeightedExample:
    def test_weighted_bipartite_path_is_one_path_separable(self):
        # The paper's Section 5.2 opener: a path of n/2 vertices plus a
        # stable set of n/2 vertices joined to every path vertex has a
        # K_{n/2,n/2} minor, yet with path edges of weight 1 and
        # cross edges of weight n/2 the whole path is a single
        # minimum-cost path whose removal isolates the stable set —
        # O(1)-path separability does not reduce to minor-freeness.
        half = 12
        g = Graph()
        for i in range(half - 1):
            g.add_edge(("p", i), ("p", i + 1), 1.0)
        for j in range(half):
            for i in range(half):
                g.add_edge(("s", j), ("p", i), float(half))
        from repro.core import PathSeparator, SeparatorPhase

        whole_path = [("p", i) for i in range(half)]
        sep = PathSeparator(phases=[SeparatorPhase(paths=[whole_path])])
        sep.validate(g)  # the path IS a minimum-cost path; removal isolates
        assert sep.num_paths == 1
        assert sep.max_component_fraction(g) <= 0.5

    def test_greedy_engine_also_finds_small_separator_there(self):
        half = 10
        g = Graph()
        for i in range(half - 1):
            g.add_edge(("p", i), ("p", i + 1), 1.0)
        for j in range(half):
            for i in range(half):
                g.add_edge(("s", j), ("p", i), float(half))
        sep = GreedyPeelingEngine(seed=0).find_separator(g)
        sep.validate(g)
        assert sep.num_paths <= 3
