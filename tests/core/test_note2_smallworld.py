"""Note 2: closest-separator-vertex contacts."""

import pytest

from repro.core import (
    AugmentedGraph,
    GreedyRouter,
    build_decomposition,
)
from repro.core.smallworld import ClosestSeparatorAugmentation
from repro.generators import grid_2d, random_tree
from repro.graphs import dijkstra

from tests.conftest import pair_sample


class TestClosestSeparatorAugmentation:
    def test_contacts_on_separators(self):
        g = grid_2d(8)
        tree = build_decomposition(g)
        aug = ClosestSeparatorAugmentation(tree).augment(g, seed=1)
        separator_vertices = set()
        for node in tree.nodes:
            separator_vertices |= node.separator.vertices()
        for v, (u, _) in aug.long_edges.items():
            assert u in separator_vertices

    def test_contact_is_closest_of_some_level(self):
        g = grid_2d(8)
        tree = build_decomposition(g)
        aug = ClosestSeparatorAugmentation(tree).augment(g, seed=2)
        for v, (u, w) in list(aug.long_edges.items())[:15]:
            # The contact must be the nearest separator vertex of at
            # least one level of v's root path (within that node).
            found = False
            for node_id in tree.root_path(v):
                node = tree.nodes[node_id]
                sep = node.separator.vertices() - {v}
                if not sep:
                    continue
                dist, _ = dijkstra(g, v, allowed=set(node.vertices))
                reach = [(dist[x], repr(x)) for x in sep if x in dist]
                if reach and min(reach)[0] == dist.get(u, None):
                    found = True
                    break
            assert found, (v, u)

    def test_most_vertices_get_contacts(self):
        g = grid_2d(9)
        aug = ClosestSeparatorAugmentation.build(g).augment(g, seed=3)
        assert aug.num_long_edges >= 0.6 * g.num_vertices

    def test_routing_beats_plain_greedy(self):
        g = grid_2d(14)
        pairs = pair_sample(g, 60, seed=4)
        tree = build_decomposition(g)
        aug = ClosestSeparatorAugmentation(tree).augment(g, seed=5)
        plain = GreedyRouter(AugmentedGraph(base=g)).mean_hops(pairs)
        augmented = GreedyRouter(aug).mean_hops(pairs)
        assert augmented < plain

    def test_works_on_trees(self):
        g = random_tree(60, seed=6)
        aug = ClosestSeparatorAugmentation.build(g).augment(g, seed=7)
        router = GreedyRouter(aug)
        for u, v in pair_sample(g, 20, seed=8):
            assert router.hops(u, v) >= 1
