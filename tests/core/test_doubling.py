import pytest

from repro.core import (
    DoublingOracle,
    doubling_dimension_estimate,
    grid3d_doubling_decomposition,
)
from repro.generators import grid_2d, grid_3d, path_graph, spider_tree
from repro.graphs import connected_components, dijkstra, induced_subgraph
from repro.util.errors import GraphError

from tests.conftest import pair_sample


class TestDimensionEstimate:
    def test_path_has_low_dimension(self):
        alpha = doubling_dimension_estimate(path_graph(64), num_samples=8)
        assert alpha <= 2.0

    def test_spider_dimension_grows_with_legs(self):
        # A spider with many legs has unbounded doubling dimension.
        thin = doubling_dimension_estimate(spider_tree(3, 10), num_samples=10)
        fat = doubling_dimension_estimate(spider_tree(24, 10), num_samples=10)
        assert fat > thin

    def test_line_lower_than_box(self):
        line = doubling_dimension_estimate(path_graph(125), num_samples=8)
        box = doubling_dimension_estimate(grid_3d(5), num_samples=8)
        assert line < box

    def test_plane_close_to_or_below_box(self):
        # The greedy estimator is noisy; allow one unit of slack on the
        # 2D-vs-3D comparison.
        plane = doubling_dimension_estimate(grid_2d(7), num_samples=8)
        box = doubling_dimension_estimate(grid_3d(5), num_samples=8)
        assert plane <= box + 1.0

    def test_tiny_graph(self):
        assert doubling_dimension_estimate(path_graph(1)) == 0.0

    def test_deterministic_with_seed(self):
        g = grid_2d(6)
        a = doubling_dimension_estimate(g, num_samples=5, seed=3)
        b = doubling_dimension_estimate(g, num_samples=5, seed=3)
        assert a == b


class TestPlaneDecomposition:
    def test_every_vertex_has_home(self):
        g = grid_3d(4)
        dec = grid3d_doubling_decomposition(g)
        assert set(dec.home) == set(g.vertices())

    def test_children_at_most_half(self):
        g = grid_3d(5)
        dec = grid3d_doubling_decomposition(g)
        for node in dec.nodes:
            for child_id in node.children:
                child = dec.nodes[child_id]
                assert len(child.vertices) <= len(node.vertices) / 2

    def test_separator_is_plane(self):
        g = grid_3d(4)
        dec = grid3d_doubling_decomposition(g)
        root = dec.nodes[0]
        values = {v[root.axis] for v in root.separator}
        assert values == {root.plane_value}

    def test_separator_is_isometric(self):
        # Distances inside the plane equal distances in the whole grid.
        g = grid_3d(4)
        dec = grid3d_doubling_decomposition(g)
        plane = dec.nodes[0].separator
        sub = induced_subgraph(g, plane)
        source = next(iter(plane))
        inside, _ = dijkstra(sub, source)
        outside, _ = dijkstra(g, source)
        for v in plane:
            assert inside[v] == outside[v]

    def test_separator_disconnects(self):
        g = grid_3d(4)
        dec = grid3d_doubling_decomposition(g)
        root = dec.nodes[0]
        remaining = set(root.vertices) - set(root.separator)
        comps = connected_components(g, within=remaining)
        assert len(comps) == 2

    def test_non_tuple_vertices_rejected(self):
        with pytest.raises(GraphError):
            grid3d_doubling_decomposition(grid_2d(3))

    def test_root_paths_end_at_home(self):
        g = grid_3d(3)
        dec = grid3d_doubling_decomposition(g)
        for v in g.vertices():
            chain = dec.root_path(v)
            assert chain[-1] == dec.home[v]
            assert chain[0] == 0


class TestDoublingOracle:
    @pytest.mark.parametrize("epsilon", [0.5, 0.25])
    def test_stretch(self, epsilon):
        g = grid_3d(5)
        oracle = DoublingOracle(g, epsilon=epsilon)
        for u, v in pair_sample(g, 80, seed=1):
            true = dijkstra(g, u)[0][v]
            est = oracle.query(u, v)
            assert true - 1e-9 <= est <= (1 + epsilon) * true + 1e-9

    def test_identity(self):
        oracle = DoublingOracle(grid_3d(3), epsilon=0.5)
        assert oracle.query((0, 0, 0), (0, 0, 0)) == 0.0

    def test_rectangular_boxes(self):
        g = grid_3d(2, 3, 7)
        oracle = DoublingOracle(g, epsilon=0.5)
        for u, v in pair_sample(g, 40, seed=2):
            true = dijkstra(g, u)[0][v]
            est = oracle.query(u, v)
            assert true - 1e-9 <= est <= 1.5 * true + 1e-9

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            DoublingOracle(grid_3d(3), epsilon=0.0)

    def test_size_report(self):
        oracle = DoublingOracle(grid_3d(4), epsilon=0.5)
        report = oracle.size_report()
        assert set(report.per_vertex) == set(grid_3d(4).vertices())
        assert report.mean_words > 0
