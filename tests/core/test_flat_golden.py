"""Golden-fixture regression: both backends reproduce committed bytes.

``tests/data/golden_n64.labels.json`` and ``.bin`` were produced once
by the recipe in :func:`golden_recipe` (Delaunay, n=64, seed=77,
epsilon=0.25) with the dict backend and committed.  Every backend, on
every future revision, must rebuild those files **byte-for-byte** —
any drift in separator choice, portal selection, float arithmetic,
serialization order, or the ``/2`` record layout fails here first,
with a diff against a known-good artifact instead of a flaky
cross-backend comparison.

To regenerate after an *intentional* format change::

    PYTHONPATH=src python tests/core/test_flat_golden.py

and commit the rewritten fixtures together with the change that
justified them.
"""

import math
from pathlib import Path

import pytest

from repro.core import (
    build_decomposition,
    build_labeling,
    dump_labeling,
    load_labeling,
)
from repro.core.binfmt import BinaryLabelReader
from repro.generators import random_delaunay_graph
from repro.serve import ShardedLabelStore

DATA = Path(__file__).resolve().parent.parent / "data"
GOLDEN_JSON = DATA / "golden_n64.labels.json"
GOLDEN_BIN = DATA / "golden_n64.labels.bin"


def golden_recipe():
    graph = random_delaunay_graph(64, seed=77)[0]
    tree = build_decomposition(graph)
    return graph, tree


@pytest.mark.parametrize("backend", ["dict", "flat"])
class TestGoldenReproduction:
    def test_json_codec_byte_for_byte(self, backend):
        graph, tree = golden_recipe()
        labeling = build_labeling(graph, tree, epsilon=0.25, backend=backend)
        assert dump_labeling(labeling) == GOLDEN_JSON.read_text()

    def test_binary_codec_byte_for_byte(self, backend, tmp_path):
        graph, tree = golden_recipe()
        labeling = build_labeling(graph, tree, epsilon=0.25, backend=backend)
        out = tmp_path / "labels.bin"
        dump_labeling(labeling, out, codec="binary", num_shards=4)
        assert out.read_bytes() == GOLDEN_BIN.read_bytes()


@pytest.mark.parametrize("backend", ["dict", "flat"])
class TestGoldenServing:
    def test_stores_answer_from_committed_fixtures(self, backend):
        # Both stores, loaded from the *committed* artifacts, agree
        # with each other and with the offline JSON estimate on every
        # pair of a deterministic sample.
        remote = load_labeling(GOLDEN_JSON.read_text())
        json_store = ShardedLabelStore.load(
            GOLDEN_JSON, name="golden-json", backend=backend
        )
        bin_store = ShardedLabelStore.load(
            GOLDEN_BIN, name="golden-bin", backend=backend
        )
        verts = sorted(remote.vertices(), key=repr)
        try:
            for i, u in enumerate(verts[::5]):
                for v in verts[i :: 7]:
                    want = remote.estimate(u, v)
                    assert repr(json_store.estimate(u, v)) == repr(want)
                    assert repr(bin_store.estimate(u, v)) == repr(want)
                    assert math.isfinite(want) or want == math.inf
        finally:
            bin_store.close()


class TestGoldenBinaryRecords:
    def test_flat_decode_reencodes_identically(self):
        # Every /2 record decoded through the flat path re-encodes to
        # the exact committed bytes (binfmt round trip at the record
        # level, against an on-disk artifact rather than fresh output).
        from repro.core.binfmt import encode_label_binary

        with BinaryLabelReader(GOLDEN_BIN) as reader:
            n = 0
            for v in reader.iter_vertices():
                flat = reader.get_flat(v)
                assert encode_label_binary(flat.to_label()) == (
                    encode_label_binary(reader.get(v))
                )
                n += 1
            assert n == 64


if __name__ == "__main__":  # pragma: no cover - fixture regeneration
    graph, tree = golden_recipe()
    labeling = build_labeling(graph, tree, epsilon=0.25, backend="dict")
    GOLDEN_JSON.write_text(dump_labeling(labeling))
    dump_labeling(labeling, GOLDEN_BIN, codec="binary", num_shards=4)
    print(f"rewrote {GOLDEN_JSON} and {GOLDEN_BIN}")
