"""The packed binary label codec (``repro-distance-labels/2``).

Covers the full surface of :mod:`repro.core.binfmt`: the tagged
vertex codec (including canonicalization and the bigint escape), label
records, the pack/read round trip against the JSON codec, the mmap
reader's lazy lookup path, and the header/offset validation that keeps
a corrupt file from turning into a crash or a silent wrong answer.
"""

import json
import struct

import pytest

from repro.core import build_decomposition, build_labeling
from repro.core.binfmt import (
    HEADER_BYTES,
    MAGIC,
    BinaryLabelReader,
    decode_vertex_binary,
    encode_label_binary,
    encode_vertex_binary,
    is_binary_labels,
    pack_labeling,
    read_labeling_binary,
    write_labeling_binary,
)
from repro.core.labeling import VertexLabel
from repro.core.serialize import (
    RemoteLabels,
    SerializationError,
    canonical_vertex,
    dump_labeling,
    load_labeling,
)
from repro.generators import grid_2d, random_tree

from tests.conftest import pair_sample


def _encode(v) -> bytes:
    out = bytearray()
    encode_vertex_binary(v, out)
    return bytes(out)


def _labeled(graph):
    labeling = build_labeling(graph, build_decomposition(graph), epsilon=0.25)
    return load_labeling(dump_labeling(labeling))


@pytest.fixture(scope="module")
def remote():
    return _labeled(grid_2d(5, weight_range=(1.0, 5.0), seed=1))


@pytest.fixture(scope="module")
def blob(remote):
    return pack_labeling(remote, num_shards=4)


class TestVertexCodecBinary:
    @pytest.mark.parametrize(
        "v",
        [
            0,
            -17,
            (1 << 63) - 1,
            -(1 << 63),
            1 << 80,           # bigint escape: outside i64
            -(1 << 100),
            3.5,
            -0.25,
            "node-a",
            "",
            "☃ snow",
            (),
            (1, 2),
            ("a", (3, 4)),
            ((0, 1), (2.5, "x")),
        ],
    )
    def test_round_trip(self, v):
        data = _encode(v)
        back, pos = decode_vertex_binary(data, 0)
        assert back == v
        assert pos == len(data)

    @pytest.mark.parametrize(
        "v, canon",
        [(1.0, 1), (-3.0, -3), ((1.0, 2.5), (1, 2.5)), (((4.0,), "x"), ((4,), "x"))],
    )
    def test_integral_floats_encode_canonically(self, v, canon):
        # The binary encoding of 1.0 IS the encoding of 1: one key per
        # numerically-equal vertex family, matching shard routing.
        assert _encode(v) == _encode(canon)
        back, _ = decode_vertex_binary(_encode(v), 0)
        assert back == canon and type(back) is type(canonical_vertex(v))

    @pytest.mark.parametrize("v", [True, None, {"a": 1}, [1, 2], b"raw"])
    def test_unsupported_types_rejected(self, v):
        with pytest.raises(SerializationError, match="unsupported vertex type"):
            _encode(v)

    def test_unknown_tag_rejected(self):
        with pytest.raises(SerializationError, match="unknown vertex tag"):
            decode_vertex_binary(b"\x7f", 0)

    @pytest.mark.parametrize(
        "data",
        [
            b"",                      # no tag at all
            b"\x01\x00\x00",          # int missing bytes
            b"\x03\x10\x00\x00\x00hi",  # str shorter than its length
            b"\x04\x02\x00\x00\x00\x01",  # tuple missing elements
        ],
    )
    def test_truncation_rejected(self, data):
        with pytest.raises(SerializationError, match="truncated"):
            decode_vertex_binary(data, 0)

    def test_malformed_utf8_rejected(self):
        with pytest.raises(SerializationError, match="malformed vertex string"):
            decode_vertex_binary(b"\x03\x02\x00\x00\x00\xff\xfe", 0)


class TestLabelRecords:
    def test_record_round_trip(self, remote):
        for label in list(remote.labels.values())[:10]:
            record = encode_label_binary(label)
            reader = BinaryLabelReader(
                pack_labeling(RemoteLabels(0.1, {label.vertex: label}), 1)
            )
            back = reader.decode_record(0)
            assert back.vertex == label.vertex
            assert back.entries == label.entries

    def test_non_finite_portal_distance_rejected(self):
        label = VertexLabel(vertex=7, entries={(0, 0, 0): [(0.0, float("inf"))]})
        with pytest.raises(SerializationError, match="non-finite"):
            encode_label_binary(label)

    def test_nan_portal_position_rejected(self):
        label = VertexLabel(vertex=7, entries={(0, 0, 0): [(float("nan"), 1.0)]})
        with pytest.raises(SerializationError, match="non-finite"):
            encode_label_binary(label)

    def test_path_key_outside_i32_rejected(self):
        label = VertexLabel(vertex=7, entries={(1 << 40, 0, 0): [(0.0, 1.0)]})
        with pytest.raises(SerializationError, match="does not fit i32"):
            encode_label_binary(label)


class TestPackAndRead:
    def test_magic_and_sniffing(self, blob):
        assert blob[: len(MAGIC)] == MAGIC
        assert is_binary_labels(blob)
        assert not is_binary_labels(b'{"format": "repro-distance-labels/1"}')
        assert not is_binary_labels(b"")

    def test_round_trip_preserves_labels_and_epsilon(self, remote, blob):
        back = read_labeling_binary(blob)
        assert back.epsilon == remote.epsilon
        assert back.labels == remote.labels

    def test_source_order_preserved(self, remote, blob):
        # Records keep the labeling's own order, so /1 -> /2 -> /1 is
        # byte-identical JSON.
        reader = BinaryLabelReader(blob)
        assert list(reader.iter_vertices()) == list(remote.labels)
        assert dump_labeling(read_labeling_binary(blob)) == dump_labeling(remote)

    def test_estimates_survive_round_trip(self, remote, blob):
        back = read_labeling_binary(blob)
        graph = grid_2d(5, weight_range=(1.0, 5.0), seed=1)
        for u, v in pair_sample(graph, 30, seed=3):
            assert back.estimate(u, v) == remote.estimate(u, v)

    def test_accounting_matches_word_model(self, remote, blob):
        reader = BinaryLabelReader(blob)
        assert reader.num_labels == remote.num_labels
        assert reader.total_words == sum(
            label.words for label in remote.labels.values()
        )
        assert sum(
            reader.shard_labels(s) for s in range(reader.num_shards)
        ) == reader.num_labels
        assert sum(
            reader.shard_words(s) for s in range(reader.num_shards)
        ) == reader.total_words

    def test_get_finds_every_vertex_and_misses_cleanly(self, remote, blob):
        reader = BinaryLabelReader(blob)
        for v in remote.vertices():
            found = reader.get(v)
            assert found is not None and found.vertex == v
            assert reader.shard_of(v) < reader.num_shards
        assert reader.get((99, 99)) is None
        assert reader.get("ghost") is None

    def test_get_routes_numeric_equals_to_one_record(self):
        remote = RemoteLabels(
            0.1, {1.0: VertexLabel(1.0, {(0, 0, 0): [(0.0, 2.0)]})}
        )
        reader = BinaryLabelReader(pack_labeling(remote, num_shards=8))
        assert reader.get(1) is not None
        assert reader.get(1.0) is not None
        assert reader.shard_of(1) == reader.shard_of(1.0)

    def test_write_to_file_and_mmap_back(self, remote, tmp_path):
        path = tmp_path / "labels.bin"
        written = write_labeling_binary(remote, path, num_shards=4)
        assert path.stat().st_size == written
        with BinaryLabelReader(path) as reader:
            assert reader.mapped_bytes == written
            assert reader.num_labels == remote.num_labels
            v = next(iter(remote.vertices()))
            assert reader.get(v).entries == remote.labels[v].entries

    def test_duplicate_vertices_rejected_at_pack_time(self):
        # 1 and 1.0 are one canonical vertex; a labeling smuggling both
        # (impossible from a dict keyed by vertex, but a corrupt or
        # hand-built one can) must be refused, not silently packed.
        class TwoCopies:
            epsilon = 0.1
            labels = {
                "a": VertexLabel(vertex=1, entries={}),
                "b": VertexLabel(vertex=1.0, entries={}),
            }

        with pytest.raises(SerializationError, match="duplicate label"):
            pack_labeling(TwoCopies())

    def test_bad_shard_count_rejected(self, remote):
        with pytest.raises(SerializationError, match="num_shards"):
            pack_labeling(remote, num_shards=0)

    def test_non_finite_epsilon_rejected(self):
        with pytest.raises(SerializationError, match="non-finite epsilon"):
            pack_labeling(RemoteLabels(float("inf"), {}))

    def test_empty_labeling_round_trips(self):
        back = read_labeling_binary(pack_labeling(RemoteLabels(0.5, {})))
        assert back.epsilon == 0.5 and back.labels == {}

    def test_crc_collisions_resolved_by_vertex_compare(self, monkeypatch):
        # Force every key to one hash value: lookups must fall back to
        # comparing decoded vertices inside the equal-crc run, so a
        # collision costs a scan, never a wrong label.
        import repro.core.binfmt as binfmt

        class ConstCrc:
            @staticmethod
            def crc32(data):
                return 42

        monkeypatch.setattr(binfmt, "zlib", ConstCrc)
        remote = RemoteLabels(
            0.1,
            {v: VertexLabel(v, {(v, 0, 0): [(0.0, float(v))]}) for v in range(20)},
        )
        reader = BinaryLabelReader(pack_labeling(remote, num_shards=3))
        for v in range(20):
            assert reader.get(v).vertex == v
        assert reader.get(99) is None


class TestReaderValidation:
    def _corrupt(self, blob, offset, raw):
        return blob[:offset] + raw + blob[offset + len(raw):]

    def test_wrong_magic_rejected(self, blob):
        bad = self._corrupt(blob, 0, b"NOTLABEL")
        with pytest.raises(SerializationError, match="magic"):
            BinaryLabelReader(bad)

    def test_too_short_rejected(self):
        with pytest.raises(SerializationError, match="too short"):
            BinaryLabelReader(MAGIC + b"\x00" * 8)

    def test_truncated_file_rejected(self, blob):
        with pytest.raises(SerializationError, match="truncated or padded"):
            BinaryLabelReader(blob[:-3])

    def test_padded_file_rejected(self, blob):
        with pytest.raises(SerializationError, match="truncated or padded"):
            BinaryLabelReader(blob + b"\x00\x00")

    def test_zero_shards_rejected(self, blob):
        bad = self._corrupt(blob, 12, struct.pack("<I", 0))
        with pytest.raises(SerializationError, match="zero shards"):
            BinaryLabelReader(bad)

    def test_overlapping_regions_rejected(self, blob):
        # Point the records region before the offset index.
        bad = self._corrupt(blob, 56, struct.pack("<Q", 1))
        with pytest.raises(SerializationError, match="overlap"):
            BinaryLabelReader(bad)

    def test_shard_directory_must_cover_labels(self, blob):
        reader = BinaryLabelReader(blob)
        dir_off = reader._shard_dir_off
        last = dir_off + 8 * reader.num_shards
        bad = self._corrupt(blob, last, struct.pack("<Q", reader.num_labels + 5))
        with pytest.raises(SerializationError, match="shard directory"):
            BinaryLabelReader(bad)

    def test_record_span_outside_file_rejected(self, blob):
        reader = BinaryLabelReader(blob)
        bad = self._corrupt(
            blob, reader._offset_idx_off + 8, struct.pack("<Q", 1 << 40)
        )
        with pytest.raises(SerializationError, match="spans outside|truncated"):
            BinaryLabelReader(bad).decode_record(0)

    def test_record_id_out_of_range(self, blob):
        reader = BinaryLabelReader(blob)
        with pytest.raises(SerializationError, match="out of range"):
            reader.decode_record(reader.num_labels)

    def test_duplicate_records_rejected_on_read(self):
        # Our writer cannot produce duplicates (pack_labeling raises),
        # so forge a corrupt file: pack vertices 10 and 10.5 — an int
        # and a float record are both tag + 8 bytes — then overwrite
        # the second record's vertex field with 10's encoding.
        entries = {(0, 0, 0): [(0.0, 1.0)]}
        remote = RemoteLabels(
            0.1,
            {10: VertexLabel(10, entries), 10.5: VertexLabel(10.5, entries)},
        )
        blob = pack_labeling(remote, num_shards=1)
        reader = BinaryLabelReader(blob)
        start, _ = reader._record_span(1)
        forged = bytearray(blob)
        forged[start : start + 9] = b"\x01" + struct.pack("<q", 10)
        with pytest.raises(SerializationError, match="duplicate label.*10"):
            read_labeling_binary(bytes(forged))

    def test_close_is_idempotent(self, remote, tmp_path):
        path = tmp_path / "l.bin"
        write_labeling_binary(remote, path)
        reader = BinaryLabelReader(path)
        reader.close()
        reader.close()  # no raise

    def test_header_size_is_stable(self):
        # The documented layout: 80 bytes, and every writer/reader in
        # this module agrees.
        assert HEADER_BYTES == 80


class TestTreeVertices:
    def test_int_vertices_round_trip_from_real_graph(self):
        remote = _labeled(random_tree(24, weight_range=(1.0, 3.0), seed=2))
        back = read_labeling_binary(pack_labeling(remote, num_shards=4))
        assert back.labels == remote.labels
        assert json.loads(dump_labeling(back)) == json.loads(dump_labeling(remote))
