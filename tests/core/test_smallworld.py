import random

import pytest

from repro.core import (
    AugmentedGraph,
    GreedyRouter,
    PathSeparatorAugmentation,
    build_decomposition,
    greedy_route,
)
from repro.core.smallworld import estimate_aspect_ratio
from repro.generators import grid_2d, k_tree, random_tree
from repro.graphs import Graph, dijkstra
from repro.util.errors import GraphError

from tests.conftest import pair_sample


class TestAugmentedGraph:
    def test_contacts_include_long_edge(self):
        g = grid_2d(4)
        aug = AugmentedGraph(base=g, long_edges={(0, 0): ((3, 3), 6.0)})
        assert (3, 3) in aug.contacts((0, 0))

    def test_contacts_without_long_edge(self):
        g = grid_2d(4)
        aug = AugmentedGraph(base=g)
        assert set(aug.contacts((1, 1))) == set(g.neighbors((1, 1)))

    def test_num_long_edges(self):
        aug = AugmentedGraph(base=grid_2d(3), long_edges={(0, 0): ((2, 2), 4.0)})
        assert aug.num_long_edges == 1


class TestPathSeparatorAugmentation:
    def test_most_vertices_get_contacts(self):
        g = grid_2d(10)
        aug = PathSeparatorAugmentation.build(g).augment(g, seed=1)
        assert aug.num_long_edges >= 0.6 * g.num_vertices

    def test_long_edge_weights_are_true_distances(self):
        g = grid_2d(8, weight_range=(1.0, 4.0), seed=2)
        aug = PathSeparatorAugmentation.build(g).augment(g, seed=3)
        for v, (u, w) in list(aug.long_edges.items())[:20]:
            true = dijkstra(g, v)[0][u]
            assert w == pytest.approx(true)

    def test_contacts_are_distinct_from_source(self):
        g = grid_2d(8)
        aug = PathSeparatorAugmentation.build(g).augment(g, seed=4)
        assert all(u != v for v, (u, _) in aug.long_edges.items())

    def test_reproducible(self):
        g = grid_2d(6)
        dist = PathSeparatorAugmentation.build(g)
        a = dist.augment(g, seed=5).long_edges
        b = dist.augment(g, seed=5).long_edges
        assert a == b

    def test_contacts_lie_on_separator_paths(self):
        g = grid_2d(8)
        tree = build_decomposition(g)
        aug = PathSeparatorAugmentation(tree).augment(g, seed=6)
        on_paths = set()
        for key in tree.all_path_keys():
            on_paths.update(tree.path_vertices(key))
        for _, (u, _) in aug.long_edges.items():
            assert u in on_paths


class TestGreedyRouting:
    def test_reaches_target(self):
        g = grid_2d(9)
        aug = PathSeparatorAugmentation.build(g).augment(g, seed=7)
        for u, v in pair_sample(g, 40, seed=8):
            hops = greedy_route(aug, u, v)
            assert hops[0] == u and hops[-1] == v

    def test_plain_greedy_follows_shortest_hops(self):
        # Without augmentation greedy walks a distance-decreasing path.
        g = grid_2d(6)
        aug = AugmentedGraph(base=g)
        hops = greedy_route(aug, (0, 0), (5, 5))
        assert len(hops) - 1 == 10  # Manhattan hop count

    def test_distances_strictly_decrease(self):
        g = grid_2d(7)
        aug = PathSeparatorAugmentation.build(g).augment(g, seed=9)
        target = (6, 6)
        dist, _ = dijkstra(g, target)
        hops = greedy_route(aug, (0, 0), target, dist_to_target=dist)
        ds = [dist[h] for h in hops]
        assert all(a > b for a, b in zip(ds, ds[1:]))

    def test_unreachable_target_raises(self):
        g = Graph([(0, 1)])
        g.add_vertex(9)
        with pytest.raises(GraphError):
            greedy_route(AugmentedGraph(base=g), 0, 9)

    def test_max_hops_enforced(self):
        g = grid_2d(8)
        aug = AugmentedGraph(base=g)
        with pytest.raises(GraphError):
            greedy_route(aug, (0, 0), (7, 7), max_hops=3)

    def test_augmentation_helps_on_large_grid(self):
        g = grid_2d(16)
        pairs = pair_sample(g, 60, seed=10)
        plain = GreedyRouter(AugmentedGraph(base=g)).mean_hops(pairs)
        aug = PathSeparatorAugmentation.build(g).augment(g, seed=11)
        augmented = GreedyRouter(aug).mean_hops(pairs)
        assert augmented < plain


class TestGreedyRouter:
    def test_hops_counts_edges(self):
        g = grid_2d(5)
        router = GreedyRouter(AugmentedGraph(base=g))
        assert router.hops((0, 0), (0, 3)) == 3

    def test_mean_hops_skips_identical_pairs(self):
        g = grid_2d(4)
        router = GreedyRouter(AugmentedGraph(base=g))
        mean = router.mean_hops([((0, 0), (0, 0)), ((0, 0), (0, 1))])
        assert mean == 1.0

    def test_cache_eviction(self):
        g = grid_2d(4)
        router = GreedyRouter(AugmentedGraph(base=g), cache_size=2)
        vs = sorted(g.vertices())
        for t in vs[:5]:
            router.hops(vs[-1], t) if t != vs[-1] else None
        assert len(router._cache) <= 2


class TestAspectRatio:
    def test_unit_grid(self):
        # Diameter of a unit 5x5 grid is 8; min distance 1.
        assert estimate_aspect_ratio(grid_2d(5)) == pytest.approx(8.0)

    def test_single_vertex(self):
        g = Graph()
        g.add_vertex(0)
        assert estimate_aspect_ratio(g) == 1.0

    def test_weighted(self):
        g = Graph([(0, 1, 0.5), (1, 2, 8.0)])
        assert estimate_aspect_ratio(g) == pytest.approx(8.5 / 0.5)


class TestNote1TreewidthVariant:
    def test_single_vertex_paths_give_single_landmarks(self):
        # On a k-tree all separator paths are single vertices, so the
        # augmentation draws the path vertex itself (Note 1).
        g, _ = k_tree(60, 2, seed=12)
        tree = build_decomposition(g)
        assert all(
            len(tree.path_vertices(key)) == 1 for key in tree.all_path_keys()
        )
        aug = PathSeparatorAugmentation(tree).augment(g, seed=13)
        assert aug.num_long_edges > 0
