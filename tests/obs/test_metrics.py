"""Registry semantics: counters, gauges, histograms, labels, lifecycle."""

import pytest

from repro.obs import MetricsRegistry, render_key
from repro.obs.metrics import Histogram


@pytest.fixture
def reg():
    registry = MetricsRegistry()
    registry.enabled = True
    return registry


class TestCounters:
    def test_inc_defaults_to_one(self, reg):
        reg.inc("a.b")
        reg.inc("a.b")
        assert reg.value("a.b") == 2.0

    def test_inc_amount(self, reg):
        reg.inc("paths", 5)
        reg.inc("paths", 2.5)
        assert reg.value("paths") == 7.5

    def test_labels_render_into_key(self, reg):
        reg.inc("level.nodes", level=0)
        reg.inc("level.nodes", level=1)
        reg.inc("level.nodes", level=1)
        assert reg.value("level.nodes", level=0) == 1.0
        assert reg.value("level.nodes", level=1) == 2.0
        assert "level.nodes{level=1}" in reg.counters

    def test_multi_labels_sorted(self):
        assert render_key("m", {"b": 2, "a": 1}) == "m{a=1,b=2}"

    def test_missing_returns_none(self, reg):
        assert reg.value("nope") is None


class TestGauges:
    def test_last_write_wins(self, reg):
        reg.gauge("depth", 3)
        reg.gauge("depth", 7)
        assert reg.value("depth") == 7

    def test_gauge_max_only_raises(self, reg):
        reg.gauge_max("levels", 4)
        reg.gauge_max("levels", 2)
        assert reg.value("levels") == 4
        reg.gauge_max("levels", 9)
        assert reg.value("levels") == 9


class TestHistograms:
    def test_aggregates(self, reg):
        for v in [1.0, 2.0, 3.0, 4.0]:
            reg.observe("sizes", v)
        hist = reg.histogram("sizes")
        assert hist.count == 4
        assert hist.total == 10.0
        assert hist.min == 1.0
        assert hist.max == 4.0
        assert hist.mean == 2.5

    def test_percentiles(self, reg):
        for v in range(1, 101):
            reg.observe("lat", float(v))
        hist = reg.histogram("lat")
        assert hist.percentile(50) == pytest.approx(50, abs=2)
        assert hist.percentile(90) == pytest.approx(90, abs=2)
        assert hist.percentile(99) == pytest.approx(99, abs=2)

    def test_empty_snapshot(self):
        assert Histogram().snapshot()["count"] == 0

    def test_snapshot_shape(self, reg):
        reg.observe("x", 1.0)
        snap = reg.snapshot()["histograms"]["x"]
        assert set(snap) == {"count", "sum", "min", "max", "mean", "p50", "p90", "p99"}


class TestLifecycle:
    def test_disabled_is_noop(self):
        registry = MetricsRegistry()
        registry.inc("a")
        registry.gauge("b", 1)
        registry.observe("c", 1.0)
        assert registry.names() == []

    def test_reset(self, reg):
        reg.inc("a")
        reg.observe("c", 1.0)
        reg.reset()
        assert reg.names() == []

    def test_activate_restores_and_resets(self):
        registry = MetricsRegistry()
        registry.enabled = True
        registry.inc("old")
        registry.enabled = False
        with registry.activate():
            assert registry.enabled
            assert registry.value("old") is None  # reset wiped it
            registry.inc("new")
        assert not registry.enabled
        assert registry.value("new") == 1.0  # readings survive exit

    def test_activate_no_reset(self, reg):
        reg.inc("keep")
        with reg.activate(reset=False):
            assert reg.value("keep") == 1.0

    def test_snapshot_is_json_serializable(self, reg):
        import json

        reg.inc("a", level=3)
        reg.gauge("b", 2.5)
        reg.observe("c", 1.0)
        json.dumps(reg.snapshot())

    def test_names_covers_all_kinds(self, reg):
        reg.inc("a")
        reg.gauge("b", 1)
        reg.observe("c", 1.0)
        assert reg.names() == ["a", "b", "c"]
