"""Span nesting, exception safety, sinks, and the no-sink fast path."""

import io
import json

import pytest

from repro.obs import (
    NOOP_SPAN,
    CollectingSink,
    JsonFileSink,
    LogSink,
    record_span,
    span,
    tracing_active,
    use_sink,
)


class TestNoSinkFastPath:
    def test_span_returns_shared_noop(self):
        # Zero-overhead contract: without a sink, span() must hand back
        # the same shared object (no allocation, no clock reads).
        assert span("anything") is NOOP_SPAN
        assert span("other", n=3) is NOOP_SPAN

    def test_noop_is_reentrant_context_manager(self):
        with span("a") as outer:
            with span("b") as inner:
                outer.set_attribute("k", 1)
                inner.set_attribute("k", 2)
        assert not tracing_active()

    def test_noop_propagates_exceptions(self):
        with pytest.raises(RuntimeError):
            with span("x"):
                raise RuntimeError("boom")


class TestNesting:
    def test_parent_child_tree(self):
        collector = CollectingSink()
        with use_sink(collector):
            with span("root", n=10):
                with span("child.a"):
                    with span("grandchild"):
                        pass
                with span("child.b"):
                    pass
        assert [r.name for r in collector.roots] == ["root"]
        root = collector.roots[0]
        assert [c.name for c in root.children] == ["child.a", "child.b"]
        assert [c.name for c in root.children[0].children] == ["grandchild"]
        assert root.attributes == {"n": 10}

    def test_walk_and_find(self):
        collector = CollectingSink()
        with use_sink(collector):
            with span("root"):
                with span("inner"):
                    pass
        root = collector.roots[0]
        assert [(s.name, d) for s, d in root.walk()] == [("root", 0), ("inner", 1)]
        assert root.find("inner").name == "inner"
        assert root.find("absent") is None

    def test_durations_nest(self):
        collector = CollectingSink()
        with use_sink(collector):
            with span("root"):
                with span("inner"):
                    sum(range(1000))
        root = collector.roots[0]
        inner = root.children[0]
        assert root.duration_ns >= inner.duration_ns >= 0
        assert root.self_ns == root.duration_ns - inner.duration_ns

    def test_sequential_roots(self):
        collector = CollectingSink()
        with use_sink(collector):
            with span("first"):
                pass
            with span("second"):
                pass
        assert [r.name for r in collector.roots] == ["first", "second"]


class TestExceptionSafety:
    def test_error_recorded_and_stack_unwound(self):
        collector = CollectingSink()
        with use_sink(collector):
            with pytest.raises(ValueError):
                with span("root"):
                    with span("inner"):
                        raise ValueError("boom")
            # The stack is clean: a new span is a root again.
            with span("after"):
                pass
        root = collector.roots[0]
        assert root.error == "ValueError"
        assert root.children[0].error == "ValueError"
        assert collector.roots[1].name == "after"
        assert collector.roots[1].error is None

    def test_sink_detached_after_block(self):
        collector = CollectingSink()
        with use_sink(collector):
            pass
        with span("outside"):
            pass
        assert collector.spans == []


class TestSinks:
    def test_collecting_sink_sees_every_span(self):
        collector = CollectingSink()
        with use_sink(collector):
            with span("a"):
                with span("b"):
                    pass
        assert sorted(s.name for s in collector.spans) == ["a", "b"]
        assert collector.find("b").name == "b"
        assert len(collector.find_all("a")) == 1

    def test_log_sink_lines(self):
        stream = io.StringIO()
        with use_sink(LogSink(stream)):
            with span("outer", n=5):
                with span("inner"):
                    pass
        lines = stream.getvalue().strip().splitlines()
        # Inner completes first, indented one level under outer.
        assert lines[0].startswith("[trace]   inner")
        assert lines[1].startswith("[trace] outer")
        assert "n=5" in lines[1]
        assert "ms" in lines[1]

    def test_log_sink_marks_errors(self):
        stream = io.StringIO()
        with use_sink(LogSink(stream)):
            with pytest.raises(KeyError):
                with span("bad"):
                    raise KeyError("x")
        assert "error=KeyError" in stream.getvalue()

    def test_json_file_sink(self, tmp_path):
        path = tmp_path / "trace.json"
        with use_sink(JsonFileSink(path)):
            with span("root", n=2):
                with span("leaf"):
                    pass
        payload = json.loads(path.read_text())
        assert payload["format"] == "repro-trace/1"
        (root,) = payload["spans"]
        assert root["name"] == "root"
        assert root["attributes"] == {"n": 2}
        assert root["children"][0]["name"] == "leaf"
        assert root["duration_ns"] >= root["children"][0]["duration_ns"]

    def test_two_sinks_both_fed(self):
        a, b = CollectingSink(), CollectingSink()
        with use_sink(a), use_sink(b):
            with span("x"):
                pass
        assert a.find("x") and b.find("x")


class TestRecordSpan:
    """record_span replays timings measured elsewhere (e.g. in a worker
    process whose sinks are not attached)."""

    def test_noop_without_sink(self):
        record_span("orphan", 1_000_000)  # must not raise
        assert not tracing_active()

    def test_recorded_as_root(self):
        collector = CollectingSink()
        with use_sink(collector):
            record_span("labeling.worker", 5_000_000, worker=2, units=7)
        (root,) = collector.roots
        assert root.name == "labeling.worker"
        assert root.duration_ns == 5_000_000
        assert root.attributes == {"worker": 2, "units": 7}

    def test_recorded_as_child_of_open_span(self):
        collector = CollectingSink()
        with use_sink(collector):
            with span("parent"):
                record_span("replayed", 1_000)
        root = collector.roots[0]
        assert [c.name for c in root.children] == ["replayed"]
        assert root.children[0].duration_ns == 1_000

    def test_negative_duration_clamped(self):
        collector = CollectingSink()
        with use_sink(collector):
            record_span("weird", -50)
        assert collector.roots[0].duration_ns == 0
