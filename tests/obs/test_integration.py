"""Pipeline integration: the instrumented build emits the expected
span tree and metrics, and costs nothing when nobody is listening."""

import pytest

from repro.core import PathSeparatorOracle, build_decomposition
from repro.core.routing import CompactRoutingScheme
from repro.generators import grid_2d
from repro.obs import NOOP_SPAN, CollectingSink, metrics, span, use_sink


@pytest.fixture
def grid():
    return grid_2d(8)


@pytest.fixture(autouse=True)
def clean_global_metrics():
    """Tests here share the process-wide registry; isolate them."""
    metrics.reset()
    yield
    metrics.enabled = False
    metrics.reset()


class TestOracleBuildSpanTree:
    def test_expected_span_hierarchy(self, grid):
        collector = CollectingSink()
        with metrics.activate(), use_sink(collector):
            PathSeparatorOracle.build(grid, epsilon=0.25)
        (root,) = collector.roots
        assert root.name == "oracle.build"
        assert root.attributes["n"] == 64
        assert root.attributes["epsilon"] == 0.25
        children = [c.name for c in root.children]
        assert children == ["decomposition.build", "labeling.build"]
        decomp = root.find("decomposition.build")
        assert decomp.attributes["engine"].endswith("Engine")
        assert root.duration_ns >= decomp.duration_ns > 0

    def test_prebuilt_tree_skips_decomposition_span(self, grid):
        tree = build_decomposition(grid)
        collector = CollectingSink()
        with use_sink(collector):
            PathSeparatorOracle.build(grid, epsilon=0.25, tree=tree)
        (root,) = collector.roots
        assert [c.name for c in root.children] == ["labeling.build"]

    def test_level_counts_match_tree(self, grid):
        with metrics.activate():
            oracle = PathSeparatorOracle.build(grid, epsilon=0.25)
        tree = oracle.tree
        per_level = {}
        for node in tree.nodes:
            per_level[node.depth] = per_level.get(node.depth, 0) + 1
        for level, expected in per_level.items():
            assert metrics.value("decomposition.level.nodes", level=level) == expected
        assert metrics.value("decomposition.nodes") == tree.num_nodes
        assert metrics.value("decomposition.levels") == tree.depth + 1
        assert metrics.value("separator.paths_peeled") == sum(
            node.separator.num_paths for node in tree.nodes
        )

    def test_labeling_metrics_match_size_report(self, grid):
        with metrics.activate():
            oracle = PathSeparatorOracle.build(grid, epsilon=0.25)
        report = oracle.size_report()
        assert metrics.value("labeling.words") == report.total_words
        hist = metrics.histogram("labeling.label_words")
        assert hist.count == grid.num_vertices
        assert hist.total == report.total_words
        assert metrics.value("labeling.vertices") == grid.num_vertices
        assert metrics.value("labeling.dijkstra_runs") > 0

    def test_query_metrics(self, grid):
        oracle = PathSeparatorOracle.build(grid, epsilon=0.25)
        with metrics.activate():
            oracle.query((0, 0), (7, 7))
            oracle.query((0, 0), (3, 3))
        assert metrics.value("oracle.query.count") == 2
        assert metrics.value("oracle.query.portal_scans") >= 2

    def test_routing_metrics(self, grid):
        with metrics.activate():
            collector = CollectingSink()
            with use_sink(collector):
                scheme = CompactRoutingScheme.build(grid)
            hops = scheme.route((0, 0), (7, 7))
        assert collector.find("routing.build") is not None
        assert metrics.value("routing.keys_built") > 0
        assert metrics.value("routing.route.count") == 1
        assert metrics.histogram("routing.route.hops").max == len(hops) - 1


class TestZeroOverheadPath:
    def test_no_sink_build_leaves_no_trace_state(self, grid):
        # With no sink attached and metrics disabled, the instrumented
        # build must not record anything anywhere.
        assert not metrics.enabled
        before = metrics.names()
        oracle = PathSeparatorOracle.build(grid, epsilon=0.25)
        oracle.query((0, 0), (7, 7))
        assert metrics.names() == before == []

    def test_span_fast_path_is_allocation_free(self):
        # The contract the <5% overhead bound rests on (see
        # docs/observability.md for the recorded wall-clock numbers):
        # no sink -> the shared no-op span, never a fresh object.
        spans = {id(span(f"s{i}")) for i in range(100)}
        assert spans == {id(NOOP_SPAN)}

    def test_overhead_within_bound_when_disabled(self, grid):
        # Timing smoke check with a deliberately generous margin (the
        # strict 5% figure is recorded in docs/observability.md from a
        # quiet machine): disabled-telemetry builds should not be
        # grossly slower than each other run-to-run.
        import time

        def build_once():
            t0 = time.perf_counter()
            PathSeparatorOracle.build(grid, epsilon=0.25)
            return time.perf_counter() - t0

        build_once()  # warm caches
        baseline = min(build_once() for _ in range(3))
        again = min(build_once() for _ in range(3))
        assert again <= baseline * 2.0 + 0.05
