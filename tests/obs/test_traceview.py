"""Trace reassembly: file parsing, stitching, join gate, rendering."""

import json

from repro.obs.traceview import (
    SpanRecord,
    assemble_traces,
    critical_spans,
    cross_process,
    read_span_files,
    render_trace,
)

TID = "ab" * 8


def rec(span, parent, name, ts=0.0, dur_ms=1.0, svc="", trace=TID, **attrs):
    return SpanRecord(
        trace=trace,
        span=span,
        parent=parent,
        name=name,
        ts=ts,
        dur_ns=int(dur_ms * 1e6),
        service=svc,
        attrs=attrs,
    )


def write_spans(path, records, service="test"):
    with open(path, "w") as handle:
        handle.write(json.dumps({"format": "repro-spans/1", "service": service}) + "\n")
        for record in records:
            handle.write(json.dumps(record) + "\n")


class TestReadSpanFiles:
    def test_headers_and_garbage_skipped_not_fatal(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        write_spans(
            path,
            [
                {"trace": TID, "span": "s1", "name": "a", "ts": 1.0, "dur_ns": 5},
                "not-a-span",
            ],
        )
        with open(path, "a") as handle:
            handle.write("{truncated\n")
        records, skipped = read_span_files([path])
        assert [r.name for r in records] == ["a"]
        assert skipped == 1  # the truncated line; the header and the
        # non-dict line are silently ignored as foreign

    def test_merges_multiple_files(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        write_spans(a, [{"trace": TID, "span": "s1", "name": "x", "ts": 1.0, "dur_ns": 1}])
        write_spans(b, [{"trace": TID, "span": "s2", "name": "y", "ts": 2.0, "dur_ns": 1}])
        records, skipped = read_span_files([a, b])
        assert {r.span for r in records} == {"s1", "s2"}
        assert skipped == 0


class TestAssemble:
    def test_parent_links_stitched_across_processes(self):
        trees = assemble_traces(
            [
                rec("c1", None, "client.request", ts=0.0, svc="loadgen"),
                rec("c2", "c1", "client.attempt", ts=0.1, svc="loadgen"),
                rec("s1", "c2", "serve.request", ts=0.2, svc="serve"),
                rec("s2", "s1", "serve.estimate", ts=0.3, svc="serve"),
            ]
        )
        assert len(trees) == 1
        tree = trees[0]
        assert [r.name for r in tree.roots] == ["client.request"]
        assert tree.span_count == 4
        assert tree.services() == ["loadgen", "serve"]
        names = [n.name for n, _ in tree.walk()]
        assert names == [
            "client.request",
            "client.attempt",
            "serve.request",
            "serve.estimate",
        ]

    def test_missing_parent_becomes_orphan_root(self):
        trees = assemble_traces([rec("s1", "gone", "serve.request")])
        root = trees[0].roots[0]
        assert root.orphan

    def test_traces_grouped_and_ordered_by_start(self):
        trees = assemble_traces(
            [
                rec("b", None, "late", ts=5.0, trace="bb" * 8),
                rec("a", None, "early", ts=1.0, trace="aa" * 8),
            ]
        )
        assert [t.trace_id for t in trees] == ["aa" * 8, "bb" * 8]


class TestCrossProcess:
    def test_joined_tree_passes(self):
        trees = assemble_traces(
            [
                rec("c1", None, "client.request"),
                rec("s1", "c1", "serve.request"),
            ]
        )
        assert cross_process(trees[0])

    def test_orphaned_server_fragment_fails(self):
        # Both sides present but NOT linked into one tree: the gate must
        # fail, that is exactly the regression it exists to catch.
        trees = assemble_traces(
            [
                rec("c1", None, "client.request"),
                rec("s1", "missing", "serve.request"),
            ]
        )
        assert not cross_process(trees[0])

    def test_client_only_fails(self):
        trees = assemble_traces([rec("c1", None, "client.request")])
        assert not cross_process(trees[0])


class TestCriticalPath:
    def test_descends_into_last_finishing_child(self):
        root = rec("r", None, "client.request", ts=0.0, dur_ms=10)
        fast = rec("f", "r", "client.attempt", ts=0.1, dur_ms=1)
        slow = rec("s", "r", "client.attempt", ts=0.2, dur_ms=8)
        leaf = rec("l", "s", "serve.request", ts=0.3, dur_ms=5)
        tree = assemble_traces([root, fast, slow, leaf])[0]
        path = critical_spans(tree.roots[0])
        assert [n.span for n in path] == ["r", "s", "l"]


class TestRender:
    def test_render_marks_path_and_shows_attrs(self):
        tree = assemble_traces(
            [
                rec("c1", None, "client.request", ts=0.0, dur_ms=4, svc="loadgen", op="DIST"),
                rec("s1", "c1", "serve.request", ts=0.001, dur_ms=2, svc="serve"),
            ]
        )[0]
        text = render_trace(tree)
        assert TID in text
        assert "op=DIST" in text
        assert "[serve]" in text
        assert "critical path: client.request" in text
        assert "* client.request" in text.replace("  ", " ")

    def test_render_flags_orphans(self):
        tree = assemble_traces([rec("s1", "gone", "serve.request")])[0]
        assert "orphan" in render_trace(tree)
