"""Structured event log: sinks, levels, trace correlation, crash safety."""

import io
import json

import pytest

from repro.obs import (
    EventLogger,
    JsonlFileSink,
    RingBufferSink,
    StderrLineSink,
    use_sink,
)
from repro.obs.context import TraceContext, trace_id_for
from repro.obs.tracing import CollectingSink, Span


class TestFastPath:
    def test_inactive_without_sinks(self):
        logger = EventLogger()
        assert not logger.active
        logger.info("anything", n=1)  # must be a silent no-op

    def test_active_with_sink_and_removal(self):
        logger = EventLogger()
        ring = logger.add_sink(RingBufferSink(4))
        assert logger.active
        logger.remove_sink(ring)
        assert not logger.active
        logger.remove_sink(ring)  # double-remove is harmless


class TestRecordShape:
    def test_fields_and_levels(self):
        logger = EventLogger()
        ring = logger.add_sink(RingBufferSink(8))
        logger.debug("a")
        logger.info("b", x=1)
        logger.warn("c")
        logger.error("d")
        levels = [e["level"] for e in ring.events()]
        assert levels == ["debug", "info", "warn", "error"]
        event = ring.events()[1]
        assert event["event"] == "b" and event["x"] == 1
        assert isinstance(event["ts"], float)

    def test_non_jsonable_fields_coerced(self):
        logger = EventLogger()
        ring = logger.add_sink(RingBufferSink(8))
        logger.info("e", obj=object(), seq=(1, 2), nested={"k": {3}})
        event = ring.events()[0]
        json.dumps(event)  # whole record must serialize
        assert event["seq"] == [1, 2]

    def test_trace_ids_attached_inside_traced_span(self):
        logger = EventLogger()
        ring = logger.add_sink(RingBufferSink(8))
        collector = CollectingSink()
        tid = trace_id_for(0, 0)
        with use_sink(collector):
            with Span("root", context=TraceContext(tid)) as root:
                logger.info("inside")
            logger.info("outside")
        inside, outside = ring.events()
        assert inside["trace"] == tid
        assert inside["span"] == root.span_id
        assert "trace" not in outside


class TestRingBufferSink:
    def test_capacity_and_drop_count(self):
        ring = RingBufferSink(3)
        for i in range(5):
            ring.on_event({"i": i})
        assert [e["i"] for e in ring.events()] == [2, 3, 4]
        assert ring.dropped == 2
        assert len(ring) == 3

    def test_drain_clears(self):
        ring = RingBufferSink(3)
        ring.on_event({"i": 0})
        assert [e["i"] for e in ring.drain()] == [0]
        assert ring.events() == []

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            RingBufferSink(0)


class TestJsonlFileSink:
    def test_one_line_per_event_flushed(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlFileSink(path)
        sink.on_event({"event": "a", "n": 1})
        # Flushed per line: visible before close.
        assert json.loads(path.read_text().splitlines()[0])["event"] == "a"
        sink.on_event({"event": "b"})
        sink.close()
        lines = path.read_text().splitlines()
        assert [json.loads(l)["event"] for l in lines] == ["a", "b"]

    def test_appends_to_existing_file(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('{"event":"old"}\n')
        sink = JsonlFileSink(path)
        sink.on_event({"event": "new"})
        sink.close()
        assert len(path.read_text().splitlines()) == 2

    def test_write_after_close_is_dropped(self, tmp_path):
        # Crash-safety stance: a write racing interpreter shutdown must
        # not raise.
        sink = JsonlFileSink(tmp_path / "events.jsonl")
        sink.close()
        sink.on_event({"event": "late"})
        sink.close()  # double close also harmless


class TestStderrLineSink:
    def test_renders_fields_and_filters_level(self):
        stream = io.StringIO()
        sink = StderrLineSink(stream, min_level="info")
        sink.on_event({"ts": 1.0, "level": "debug", "event": "quiet"})
        sink.on_event({"ts": 1.0, "level": "warn", "event": "loud", "k": "v"})
        out = stream.getvalue()
        assert "quiet" not in out
        assert "[warn] loud k=v" in out
