"""Trace-context ids: determinism, wire round-trip, lenient parsing."""

import pytest

from repro.obs.context import (
    TraceContext,
    format_trace_id,
    span_id_for,
    trace_id_for,
)


class TestIds:
    def test_trace_id_shape(self):
        tid = trace_id_for(0, 0)
        assert len(tid) == 16
        assert tid == tid.lower()
        int(tid, 16)  # valid hex

    def test_trace_id_deterministic(self):
        assert trace_id_for(7, 3) == trace_id_for(7, 3)

    def test_trace_id_varies_with_seed_and_call(self):
        ids = {trace_id_for(s, c) for s in range(4) for c in range(4)}
        assert len(ids) == 16

    def test_span_id_deterministic(self):
        tid = trace_id_for(0, 0)
        assert span_id_for(tid, None, "root", 0) == span_id_for(tid, None, "root", 0)

    def test_span_id_varies_with_every_input(self):
        tid = trace_id_for(0, 0)
        base = span_id_for(tid, None, "root", 0)
        assert span_id_for(tid, None, "root", 1) != base
        assert span_id_for(tid, None, "other", 0) != base
        assert span_id_for(tid, base, "root", 0) != base
        assert span_id_for(trace_id_for(0, 1), None, "root", 0) != base

    def test_format_trace_id_masks_to_64_bits(self):
        assert format_trace_id(2**64 + 5) == format_trace_id(5)
        assert len(format_trace_id(0)) == 16


class TestWire:
    def test_round_trip_with_span(self):
        ctx = TraceContext(trace_id_for(1, 2), span_id_for(trace_id_for(1, 2), None, "r", 0))
        assert TraceContext.from_wire(ctx.to_wire()) == ctx

    def test_round_trip_root_context(self):
        ctx = TraceContext(trace_id_for(1, 2))
        wire = ctx.to_wire()
        assert "span" not in wire
        assert TraceContext.from_wire(wire) == ctx

    @pytest.mark.parametrize(
        "payload",
        [
            None,
            "not-a-dict",
            42,
            [],
            {},
            {"id": 12345},
            {"id": "short"},
            {"id": "g" * 16},  # non-hex
            {"id": "A" * 16},  # uppercase rejected: canonical form is lower
            {"id": "0" * 17},
            {"id": "0" * 16, "span": "bad"},
            {"id": "0" * 16, "span": 7},
        ],
    )
    def test_malformed_is_none_not_error(self, payload):
        # Lenient contract: a bad trace field costs observability, never
        # the request.
        assert TraceContext.from_wire(payload) is None

    def test_missing_span_is_allowed(self):
        ctx = TraceContext.from_wire({"id": "ab" * 8})
        assert ctx == TraceContext("ab" * 8, None)
