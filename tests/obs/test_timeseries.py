"""Timeseries plane: delta semantics, JSONL shape, the server tick."""

import asyncio
import json

from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import (
    FORMAT,
    TimeseriesWriter,
    process_rss_bytes,
    registry_sample,
    sample_delta,
)


def live_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.enabled = True
    return registry


class TestProcessRss:
    def test_positive_on_linux(self):
        assert process_rss_bytes() > 0


class TestSampleDelta:
    def test_counters_differenced_and_zero_omitted(self):
        registry = live_registry()
        registry.inc("reqs", 3)
        registry.inc("idle")
        before = registry_sample(registry)
        registry.inc("reqs", 2)
        delta = sample_delta(before, registry_sample(registry))
        # idle did not move this interval, so it must not appear.
        assert delta["counters"] == {"reqs": 2}

    def test_new_keys_count_from_zero(self):
        registry = live_registry()
        before = registry_sample(registry)
        registry.inc("fresh", 4)
        delta = sample_delta(before, registry_sample(registry))
        assert delta["counters"] == {"fresh": 4}

    def test_gauges_report_current_reading(self):
        registry = live_registry()
        registry.gauge("depth", 5)
        before = registry_sample(registry)
        registry.gauge("depth", 2)
        delta = sample_delta(before, registry_sample(registry))
        assert delta["gauges"]["depth"] == 2

    def test_histograms_reduced_to_count_sum_deltas(self):
        registry = live_registry()
        registry.observe("lat", 10.0)
        before = registry_sample(registry)
        registry.observe("lat", 30.0)
        registry.observe("lat", 2.0)
        delta = sample_delta(before, registry_sample(registry))
        assert delta["histograms"]["lat"] == {"count": 2, "sum": 32.0}


class TestTimeseriesWriter:
    def test_header_then_delta_lines(self, tmp_path):
        registry = live_registry()
        path = tmp_path / "ts.jsonl"
        writer = TimeseriesWriter(path, registry=registry, interval_s=0.5)
        registry.inc("reqs", 7)
        writer.sample()
        writer.close()
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert lines[0] == {"format": FORMAT, "interval_s": 0.5}
        assert lines[1]["counters"] == {"reqs": 7}
        assert lines[1]["dt"] >= 0
        assert writer.samples == 1

    def test_extra_gauges_merged_per_tick(self, tmp_path):
        registry = live_registry()
        writer = TimeseriesWriter(
            tmp_path / "ts.jsonl",
            registry=registry,
            extra_gauges=lambda: {"serve.inflight": 3},
        )
        record = writer.sample()
        writer.close()
        assert record["gauges"]["serve.inflight"] == 3

    def test_write_after_close_is_dropped(self, tmp_path):
        writer = TimeseriesWriter(tmp_path / "ts.jsonl", registry=MetricsRegistry())
        writer.close()
        writer.sample()  # must not raise
        writer.close()

    def test_run_samples_until_stop_with_final_sample(self, tmp_path):
        registry = live_registry()
        path = tmp_path / "ts.jsonl"

        async def go():
            writer = TimeseriesWriter(path, registry=registry, interval_s=0.01)
            stop = asyncio.Event()
            task = asyncio.ensure_future(writer.run(stop))
            registry.inc("reqs")
            await asyncio.sleep(0.05)
            stop.set()
            await task
            return writer

        writer = asyncio.run(go())
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        # Header + at least one periodic tick + the final on-stop sample.
        assert len(lines) >= 3
        assert writer.samples >= 2
        assert sum(l.get("counters", {}).get("reqs", 0) for l in lines[1:]) == 1
