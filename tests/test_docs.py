"""Documentation consistency: every code pointer in the docs resolves.

Keeps README/DESIGN/docs honest as the code evolves: a renamed module
or symbol fails here instead of silently rotting in prose.
"""

import importlib
import re
from pathlib import Path

import pytest

ROOT = Path(__file__).parent.parent

DOC_FILES = [
    ROOT / "README.md",
    ROOT / "DESIGN.md",
    ROOT / "EXPERIMENTS.md",
    ROOT / "docs" / "paper_mapping.md",
    ROOT / "docs" / "algorithms.md",
    ROOT / "docs" / "observability.md",
    ROOT / "docs" / "performance.md",
    ROOT / "docs" / "serving.md",
    ROOT / "docs" / "formats.md",
    ROOT / "docs" / "cluster.md",
    ROOT / "docs" / "dynamic.md",
]

MODULE_PATTERN = re.compile(r"`(repro(?:\.[a-z_0-9]+)+)`")


def referenced_modules():
    seen = set()
    for doc in DOC_FILES:
        for match in MODULE_PATTERN.finditer(doc.read_text()):
            seen.add(match.group(1))
    return sorted(seen)


class TestDocPointers:
    @pytest.mark.parametrize("dotted", referenced_modules())
    def test_module_or_symbol_exists(self, dotted):
        parts = dotted.split(".")
        # Try as a module; else as module.attribute.
        try:
            importlib.import_module(dotted)
            return
        except ImportError:
            pass
        module = importlib.import_module(".".join(parts[:-1]))
        assert hasattr(module, parts[-1]), dotted

    def test_docs_exist(self):
        for doc in DOC_FILES:
            assert doc.exists(), doc

    def test_experiment_benches_exist(self):
        # Every experiment id named in DESIGN.md has a bench file.
        design = (ROOT / "DESIGN.md").read_text()
        for match in re.finditer(r"benchmarks/(bench_\w+\.py)", design):
            assert (ROOT / "benchmarks" / match.group(1)).exists(), match.group(1)

    def test_examples_listed_in_readme_exist(self):
        readme = (ROOT / "README.md").read_text()
        for match in re.finditer(r"examples/(\w+\.py)", readme):
            assert (ROOT / "examples" / match.group(1)).exists(), match.group(1)
