import pytest

from repro.generators import grid_2d, random_tree
from repro.graphs import Graph
from repro.treedecomp import (
    CliqueWeight,
    center_bag,
    center_clique_weight,
    min_degree_decomposition,
)


class TestCliqueWeight:
    def test_total(self):
        cw = CliqueWeight()
        cw.add({0, 1}, 2.0)
        cw.add({2}, 3.0)
        assert cw.total() == 5.0

    def test_weight_of_counts_touching_cliques(self):
        cw = CliqueWeight()
        cw.add({0, 1}, 2.0)
        cw.add({2}, 3.0)
        assert cw.weight_of({1}) == 2.0
        assert cw.weight_of({1, 2}) == 5.0
        assert cw.weight_of({9}) == 0.0

    def test_subadditive_not_additive(self):
        # One clique touching two disjoint sets is counted twice.
        cw = CliqueWeight()
        cw.add({0, 1}, 1.0)
        assert cw.weight_of({0}) + cw.weight_of({1}) > cw.total()

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            CliqueWeight().add({0}, -1.0)


class TestCenterCliqueWeight:
    def test_total_equals_n(self, small_grid):
        td = min_degree_decomposition(small_grid)
        center = td.bags[center_bag(small_grid, td)]
        cw = center_clique_weight(small_grid, center)
        assert cw.total() == small_grid.num_vertices

    def test_center_is_half_size_separator(self, small_grid):
        td = min_degree_decomposition(small_grid)
        center = td.bags[center_bag(small_grid, td)]
        cw = center_clique_weight(small_grid, center)
        assert cw.is_half_size_separator(small_grid, center)

    def test_lemma5_transfer(self):
        # Any half-size separator S (subset of the center) w.r.t. the
        # clique weight leaves graph components of <= n/2 vertices.
        g = random_tree(81, seed=4)
        td = min_degree_decomposition(g)
        center = td.bags[center_bag(g, td)]
        cw = center_clique_weight(g, center)
        from repro.graphs import connected_components

        if cw.is_half_size_separator(g, center):
            remaining = set(g.vertices()) - set(center)
            for comp in connected_components(g, within=remaining):
                assert len(comp) <= g.num_vertices / 2

    def test_empty_outside(self):
        g = Graph([(0, 1)])
        cw = center_clique_weight(g, {0, 1})
        assert cw.total() == 2.0
