import random

import pytest

from repro.generators import (
    complete_bipartite,
    cycle_graph,
    grid_2d,
    k_tree,
    random_tree,
    series_parallel_graph,
)
from repro.graphs import Graph
from repro.treedecomp import decomposition_from_elimination, min_degree_order
from repro.treedecomp.exact import exact_treewidth
from repro.util.errors import GraphError


class TestKnownTreewidths:
    def test_tree(self):
        assert exact_treewidth(random_tree(12, seed=1)) == 1

    def test_single_vertex(self):
        g = Graph()
        g.add_vertex(0)
        assert exact_treewidth(g) == 0

    def test_empty(self):
        assert exact_treewidth(Graph()) == -1

    def test_cycle(self):
        assert exact_treewidth(cycle_graph(9)) == 2

    def test_clique(self):
        k5 = Graph([(i, j) for i in range(5) for j in range(i + 1, 5)])
        assert exact_treewidth(k5) == 4

    def test_complete_bipartite(self):
        # tw(K_{r,s}) = min(r, s) for r,s >= 1.
        assert exact_treewidth(complete_bipartite(3, 3)) == 3
        assert exact_treewidth(complete_bipartite(2, 5)) == 2

    def test_grid(self):
        # tw of an a x b grid (a <= b) is a (for a >= 2).
        assert exact_treewidth(grid_2d(3, 3)) == 3
        assert exact_treewidth(grid_2d(2, 6)) == 2

    def test_k_tree(self):
        g, _ = k_tree(12, 3, seed=2)
        assert exact_treewidth(g) == 3

    def test_series_parallel_at_most_two(self):
        g = series_parallel_graph(14, seed=3)
        assert exact_treewidth(g) <= 2

    def test_disconnected_takes_max(self):
        g = Graph([(0, 1)])  # tw 1
        for i, j in ((10, 11), (11, 12), (10, 12)):  # triangle: tw 2
            g.add_edge(i, j)
        assert exact_treewidth(g) == 2


class TestGuard:
    def test_large_component_rejected(self):
        with pytest.raises(GraphError):
            exact_treewidth(grid_2d(5, 5))


class TestHeuristicCertification:
    def test_min_degree_upper_bounds_exact(self):
        rng = random.Random(0)
        for trial in range(10):
            n = rng.randint(4, 11)
            g = Graph()
            g.add_vertex(0)
            for v in range(1, n):
                g.add_edge(rng.randrange(v), v)
            for _ in range(rng.randint(0, n)):
                u, v = rng.randrange(n), rng.randrange(n)
                if u != v and not g.has_edge(u, v):
                    g.add_edge(u, v)
            exact = exact_treewidth(g)
            heuristic = decomposition_from_elimination(
                g, min_degree_order(g)
            ).width
            assert heuristic >= exact
            assert heuristic <= exact + 3  # near-optimal at these sizes
