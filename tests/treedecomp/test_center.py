import pytest

from repro.generators import grid_2d, k_tree, random_tree, series_parallel_graph
from repro.graphs import Graph, connected_components
from repro.treedecomp import center_bag, min_degree_decomposition
from repro.treedecomp.heuristics import decomposition_from_bags


def assert_center(graph, td, index):
    bag = td.bags[index]
    remaining = set(graph.vertices()) - bag
    comps = connected_components(graph, within=remaining)
    half = graph.num_vertices / 2
    for comp in comps:
        assert len(comp) <= half


class TestCenterBag:
    @pytest.mark.parametrize("n", [10, 33, 64, 101])
    def test_balances_random_trees(self, n):
        g = random_tree(n, seed=n)
        td = min_degree_decomposition(g)
        assert_center(g, td, center_bag(g, td))

    def test_balances_grid(self):
        g = grid_2d(7)
        td = min_degree_decomposition(g)
        assert_center(g, td, center_bag(g, td))

    def test_balances_ktree(self):
        g, bags = k_tree(50, 3, seed=1)
        td = decomposition_from_bags(g, bags)
        assert_center(g, td, center_bag(g, td))

    def test_balances_series_parallel(self):
        g = series_parallel_graph(90, seed=2)
        td = min_degree_decomposition(g)
        assert_center(g, td, center_bag(g, td))

    def test_any_root_works(self):
        g = random_tree(50, seed=3)
        td = min_degree_decomposition(g)
        for root in (0, td.num_bags // 2, td.num_bags - 1):
            assert_center(g, td, center_bag(g, td, root=root))

    def test_single_bag(self):
        g = Graph([(0, 1)])
        td = min_degree_decomposition(g)
        index = center_bag(g, td)
        assert 0 <= index < td.num_bags

    def test_star_center_is_hub_bag(self):
        # Star graph: centroid bag must contain the hub.
        g = Graph([(0, i) for i in range(1, 12)])
        td = min_degree_decomposition(g)
        assert 0 in td.bags[center_bag(g, td)]
