import pytest

from repro.generators import (
    grid_2d,
    k_tree,
    outerplanar_graph,
    random_tree,
    series_parallel_graph,
)
from repro.graphs import Graph
from repro.treedecomp import (
    decomposition_from_bags,
    decomposition_from_elimination,
    mcs_order,
    min_degree_decomposition,
    min_degree_order,
    min_fill_order,
)
from repro.util.errors import GraphError, InvalidDecompositionError


class TestOrders:
    def test_min_degree_covers_all_vertices(self, small_grid):
        order = min_degree_order(small_grid)
        assert sorted(order, key=repr) == sorted(small_grid.vertices(), key=repr)

    def test_min_fill_covers_all_vertices(self):
        g = grid_2d(4)
        assert len(min_fill_order(g)) == 16

    def test_mcs_covers_all_vertices(self, small_grid):
        assert len(mcs_order(small_grid)) == 25

    def test_orders_deterministic(self, small_grid):
        assert min_degree_order(small_grid) == min_degree_order(small_grid)
        assert mcs_order(small_grid) == mcs_order(small_grid)


class TestEliminationDecomposition:
    @pytest.mark.parametrize("order_fn", [min_degree_order, min_fill_order, mcs_order])
    def test_valid_on_grid(self, order_fn):
        g = grid_2d(5)
        td = decomposition_from_elimination(g, order_fn(g))
        td.validate(g)

    def test_tree_width_one(self):
        g = random_tree(60, seed=1)
        td = min_degree_decomposition(g)
        td.validate(g)
        assert td.width == 1

    def test_series_parallel_width_two(self):
        g = series_parallel_graph(80, seed=2)
        td = min_degree_decomposition(g)
        td.validate(g)
        assert td.width <= 2

    def test_mcs_exact_on_chordal(self):
        g, _ = k_tree(60, 4, seed=3)
        td = decomposition_from_elimination(g, mcs_order(g))
        td.validate(g)
        assert td.width == 4

    def test_outerplanar_width_at_most_two(self):
        g = outerplanar_graph(50, seed=4)
        td = min_degree_decomposition(g)
        td.validate(g)
        assert td.width <= 2

    def test_incomplete_order_rejected(self, small_grid):
        with pytest.raises(GraphError):
            decomposition_from_elimination(small_grid, [(0, 0)])

    def test_single_vertex_graph(self):
        g = Graph()
        g.add_vertex("x")
        td = decomposition_from_elimination(g, ["x"])
        td.validate(g)
        assert td.width == 0


class TestFromBags:
    def test_ktree_bags(self):
        g, bags = k_tree(40, 3, seed=5)
        td = decomposition_from_bags(g, bags)
        assert td.width == 3

    def test_invalid_bags_detected(self):
        g = Graph([(0, 1), (1, 2), (0, 2)])
        with pytest.raises(InvalidDecompositionError):
            decomposition_from_bags(g, [frozenset({0, 1}), frozenset({1, 2})])

    def test_empty_bags_rejected(self):
        with pytest.raises(InvalidDecompositionError):
            decomposition_from_bags(Graph(), [])
