import pytest

from repro.generators import grid_2d, k_tree
from repro.graphs import Graph
from repro.treedecomp import TreeDecomposition
from repro.util.errors import InvalidDecompositionError


@pytest.fixture
def path_decomposition():
    # Decomposition of the path 0-1-2-3: bags {0,1},{1,2},{2,3}.
    g = Graph([(0, 1), (1, 2), (2, 3)])
    td = TreeDecomposition(
        bags=[{0, 1}, {1, 2}, {2, 3}],
        tree_edges=[(0, 1), (1, 2)],
    )
    return g, td


class TestBasics:
    def test_width(self, path_decomposition):
        _, td = path_decomposition
        assert td.width == 1

    def test_num_bags(self, path_decomposition):
        _, td = path_decomposition
        assert td.num_bags == 3

    def test_bags_containing(self, path_decomposition):
        _, td = path_decomposition
        assert td.bags_containing(1) == [0, 1]

    def test_empty_width(self):
        assert TreeDecomposition([], []).width == -1

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(InvalidDecompositionError):
            TreeDecomposition([{0}], [(0, 5)])


class TestValidate:
    def test_valid_passes(self, path_decomposition):
        g, td = path_decomposition
        td.validate(g)

    def test_missing_vertex_detected(self, path_decomposition):
        g, td = path_decomposition
        g.add_vertex(99)
        with pytest.raises(InvalidDecompositionError, match="not covered"):
            td.validate(g)

    def test_missing_edge_detected(self, path_decomposition):
        g, td = path_decomposition
        g.add_edge(0, 3)
        with pytest.raises(InvalidDecompositionError, match="edge"):
            td.validate(g)

    def test_disconnected_trace_detected(self):
        g = Graph([(0, 1), (1, 2)])
        # Vertex 0 appears in bags 0 and 2, which are not adjacent.
        td = TreeDecomposition(
            bags=[{0, 1}, {1, 2}, {0, 2}],
            tree_edges=[(0, 1), (1, 2)],
        )
        with pytest.raises(InvalidDecompositionError, match="connected subtree"):
            td.validate(g)

    def test_non_tree_bag_graph_detected(self):
        g = Graph([(0, 1)])
        td = TreeDecomposition(
            bags=[{0, 1}, {0, 1}, {0, 1}],
            tree_edges=[(0, 1), (1, 2), (0, 2)],  # a cycle
        )
        with pytest.raises(InvalidDecompositionError):
            td.validate(g)

    def test_empty_decomposition_of_empty_graph(self):
        TreeDecomposition([], []).validate(Graph())

    def test_empty_decomposition_of_nonempty_graph(self):
        g = Graph()
        g.add_vertex(0)
        with pytest.raises(InvalidDecompositionError):
            TreeDecomposition([], []).validate(g)


class TestRooted:
    def test_parent_array(self, path_decomposition):
        _, td = path_decomposition
        parent, order = td.rooted(0)
        assert parent[0] is None
        assert parent[1] == 0
        assert parent[2] == 1
        assert order[0] == 0

    def test_rooting_elsewhere(self, path_decomposition):
        _, td = path_decomposition
        parent, _ = td.rooted(2)
        assert parent[2] is None
        assert parent[0] == 1


class TestRestrict:
    def test_restriction_valid_for_connected_subset(self):
        g = grid_2d(3)
        from repro.treedecomp import min_degree_decomposition

        td = min_degree_decomposition(g)
        keep = {v for v in g.vertices() if v[0] <= 1}  # two connected rows
        sub_td = td.restrict(keep)
        from repro.graphs import induced_subgraph

        sub_td.validate(induced_subgraph(g, keep))

    def test_restriction_keeps_bag_count(self, path_decomposition):
        _, td = path_decomposition
        sub = td.restrict({0, 1})
        assert sub.num_bags == td.num_bags
