from repro.generators import grid_2d
from repro.graphs import Graph, connected_components, is_connected, largest_component


class TestConnectedComponents:
    def test_single_component(self, small_grid):
        comps = connected_components(small_grid)
        assert len(comps) == 1
        assert len(comps[0]) == 25

    def test_multiple_components_sorted_by_size(self):
        g = Graph([(0, 1), (1, 2), (10, 11)])
        g.add_vertex(99)
        comps = connected_components(g)
        assert [len(c) for c in comps] == [3, 2, 1]

    def test_within_restriction_splits(self):
        g = grid_2d(3)
        # Remove the middle column -> two vertical strips.
        keep = {v for v in g.vertices() if v[1] != 1}
        comps = connected_components(g, within=keep)
        assert len(comps) == 2
        assert all(len(c) == 3 for c in comps)

    def test_within_ignores_foreign_vertices(self):
        g = Graph([(0, 1)])
        comps = connected_components(g, within={0, 1, 777})
        assert len(comps) == 1

    def test_empty_graph(self):
        assert connected_components(Graph()) == []


class TestLargestComponent:
    def test_largest(self):
        g = Graph([(0, 1), (2, 3), (3, 4)])
        assert largest_component(g) == {2, 3, 4}

    def test_empty(self):
        assert largest_component(Graph()) == set()


class TestIsConnected:
    def test_connected(self, small_grid):
        assert is_connected(small_grid)

    def test_disconnected(self):
        g = Graph([(0, 1)])
        g.add_vertex(9)
        assert not is_connected(g)

    def test_empty_counts_as_connected(self):
        assert is_connected(Graph())

    def test_within(self):
        g = grid_2d(3)
        keep = {v for v in g.vertices() if v[1] != 1}
        assert not is_connected(g, within=keep)
