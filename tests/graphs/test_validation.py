import pytest

from repro.graphs import Graph, require_connected, validate_graph
from repro.graphs.validation import require_nonempty, require_positive_weights
from repro.util.errors import GraphError, NotConnectedError


class TestRequirePositiveWeights:
    def test_accepts_valid(self, triangle):
        require_positive_weights(triangle)

    def test_detects_corruption(self, triangle):
        # Bypass the public API the way a buggy caller might.
        triangle._adj[0][1] = -1.0
        triangle._adj[1][0] = -1.0
        with pytest.raises(GraphError):
            require_positive_weights(triangle)


class TestRequireConnected:
    def test_accepts_connected(self, triangle):
        require_connected(triangle)

    def test_rejects_disconnected(self):
        g = Graph([(0, 1)])
        g.add_vertex(2)
        with pytest.raises(NotConnectedError):
            require_connected(g)

    def test_empty_graph_passes(self):
        require_connected(Graph())


class TestRequireNonempty:
    def test_rejects_empty(self):
        with pytest.raises(GraphError):
            require_nonempty(Graph())

    def test_accepts_single_vertex(self):
        g = Graph()
        g.add_vertex(0)
        require_nonempty(g)


class TestValidateGraph:
    def test_full_battery(self, triangle):
        validate_graph(triangle, connected=True)

    def test_connectivity_optional(self):
        g = Graph([(0, 1)])
        g.add_vertex(2)
        validate_graph(g)  # fine without the flag
        with pytest.raises(NotConnectedError):
            validate_graph(g, connected=True)
