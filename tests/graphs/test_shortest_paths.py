import pytest

from repro.generators import grid_2d, random_tree
from repro.graphs import (
    Graph,
    batched_dijkstra,
    bidirectional_dijkstra,
    dijkstra,
    dijkstra_tree,
    multi_source_dijkstra,
    path_cost,
    shortest_path,
)
from repro.graphs.shortest_paths import multi_source_forest, reconstruct_path
from repro.util.errors import GraphError

INF = float("inf")


@pytest.fixture
def diamond():
    # 0 -1- 1 -1- 3, 0 -1- 2 -1- 3 plus a heavy direct edge 0-3.
    return Graph([(0, 1, 1.0), (1, 3, 1.0), (0, 2, 1.0), (2, 3, 1.0), (0, 3, 5.0)])


class TestDijkstra:
    def test_distances(self, diamond):
        dist, _ = dijkstra(diamond, 0)
        assert dist[3] == 2.0
        assert dist[0] == 0.0

    def test_parent_reconstructs_shortest_path(self, diamond):
        dist, parent = dijkstra(diamond, 0)
        path = reconstruct_path(parent, 3)
        assert path[0] == 0 and path[-1] == 3
        assert path_cost(diamond, path) == dist[3]

    def test_missing_source_raises(self, diamond):
        with pytest.raises(GraphError):
            dijkstra(diamond, 99)

    def test_allowed_restricts_search(self, diamond):
        dist, _ = dijkstra(diamond, 0, allowed={0, 1, 3})
        assert dist[3] == 2.0  # via 1; 2 is not allowed
        dist2, _ = dijkstra(diamond, 0, allowed={0, 3})
        assert dist2[3] == 5.0  # only the direct heavy edge remains

    def test_source_must_be_allowed(self, diamond):
        with pytest.raises(GraphError):
            dijkstra(diamond, 0, allowed={1, 2})

    def test_cutoff_prunes(self, diamond):
        dist, _ = dijkstra(diamond, 0, cutoff=1.0)
        assert 3 not in dist
        assert dist[1] == 1.0

    def test_disconnected_unreached(self):
        g = Graph([(0, 1)])
        g.add_vertex(9)
        dist, _ = dijkstra(g, 0)
        assert 9 not in dist

    def test_agrees_with_hop_count_on_unit_grid(self):
        g = grid_2d(5)
        dist, _ = dijkstra(g, (0, 0))
        for (r, c), d in dist.items():
            assert d == r + c  # Manhattan distance on a unit mesh


class TestMultiSource:
    def test_nearest_source_wins(self, diamond):
        dist, origin = multi_source_dijkstra(diamond, [0, 3])
        assert dist[1] == 1.0 and origin[1] in (0, 3)
        assert dist[0] == 0.0 and origin[0] == 0

    def test_forest_parents_point_to_sources(self, diamond):
        dist, origin, parent = multi_source_forest(diamond, [0])
        assert parent[0] is None
        # Walking parents from any vertex ends at the source.
        v = 3
        while parent[v] is not None:
            v = parent[v]
        assert v == 0

    def test_forest_multi_roots(self):
        g = grid_2d(4)
        sources = [(0, c) for c in range(4)]
        dist, origin, parent = multi_source_forest(g, sources)
        for s in sources:
            assert parent[s] is None and dist[s] == 0.0
        assert dist[(3, 0)] == 3.0
        assert origin[(3, 2)] == (0, 2)

    def test_missing_source_raises(self, diamond):
        with pytest.raises(GraphError):
            multi_source_dijkstra(diamond, [0, 42])


class TestBatchedDijkstra:
    def test_matches_per_source_dijkstra(self, diamond):
        sources = [0, 2, 3]
        batched = batched_dijkstra(diamond, sources)
        assert set(batched) == set(sources)
        for s in sources:
            assert batched[s] == dijkstra(diamond, s)[0]

    def test_matches_on_weighted_grid(self):
        g = grid_2d(6, weight_range=(1.0, 9.0), seed=3)
        sources = [(0, 0), (2, 3), (5, 5), (1, 1)]
        batched = batched_dijkstra(g, sources)
        for s in sources:
            assert batched[s] == dijkstra(g, s)[0]

    def test_respects_allowed(self, diamond):
        batched = batched_dijkstra(diamond, [0, 3], allowed={0, 1, 3})
        assert batched[0] == dijkstra(diamond, 0, allowed={0, 1, 3})[0]
        assert batched[3] == dijkstra(diamond, 3, allowed={0, 1, 3})[0]
        assert 2 not in batched[0]

    def test_respects_cutoff(self, diamond):
        batched = batched_dijkstra(diamond, [0], cutoff=1.0)
        assert batched[0] == dijkstra(diamond, 0, cutoff=1.0)[0]
        assert 3 not in batched[0]

    def test_duplicate_sources_deduped(self, diamond):
        batched = batched_dijkstra(diamond, [0, 0, 1, 0])
        assert set(batched) == {0, 1}
        assert batched[0] == dijkstra(diamond, 0)[0]

    def test_missing_source_raises(self, diamond):
        with pytest.raises(GraphError):
            batched_dijkstra(diamond, [0, 42])

    def test_source_outside_allowed_raises(self, diamond):
        with pytest.raises(GraphError):
            batched_dijkstra(diamond, [0, 2], allowed={0, 1, 3})

    def test_empty_sources(self, diamond):
        assert batched_dijkstra(diamond, []) == {}

    def test_disconnected_component_unreached(self):
        g = Graph([(0, 1)])
        g.add_vertex(9)
        batched = batched_dijkstra(g, [0, 9])
        assert 9 not in batched[0]
        assert batched[9] == {9: 0.0}


class TestBidirectional:
    def test_matches_dijkstra(self, diamond):
        d, path = bidirectional_dijkstra(diamond, 0, 3)
        assert d == 2.0
        assert path[0] == 0 and path[-1] == 3
        assert path_cost(diamond, path) == d

    def test_same_vertex(self, diamond):
        d, path = bidirectional_dijkstra(diamond, 1, 1)
        assert d == 0.0 and path == [1]

    def test_disconnected(self):
        g = Graph([(0, 1)])
        g.add_vertex(9)
        d, path = bidirectional_dijkstra(g, 0, 9)
        assert d == INF and path == []

    def test_matches_on_random_grid_pairs(self):
        g = grid_2d(6, weight_range=(1.0, 9.0), seed=3)
        import random

        rng = random.Random(0)
        vs = sorted(g.vertices())
        for _ in range(30):
            u, v = rng.choice(vs), rng.choice(vs)
            full = dijkstra(g, u)[0].get(v, INF)
            bi, _ = bidirectional_dijkstra(g, u, v)
            assert bi == pytest.approx(full)


class TestShortestPathTree:
    def test_root_paths_are_shortest(self, diamond):
        tree = dijkstra_tree(diamond, 0)
        for v in diamond.vertices():
            assert path_cost(diamond, tree.path_to(v)) == pytest.approx(tree.dist[v])

    def test_subtree_sizes_sum(self):
        g = random_tree(30, seed=2)
        tree = dijkstra_tree(g, 0)
        sizes = tree.subtree_sizes()
        assert sizes[0] == 30
        for v in g.vertices():
            kids = tree.children[v]
            assert sizes[v] == 1 + sum(sizes[c] for c in kids)

    def test_depth_order_monotone(self, diamond):
        tree = dijkstra_tree(diamond, 0)
        order = tree.depth_order()
        dists = [tree.dist[v] for v in order]
        assert dists == sorted(dists)

    def test_contains(self, diamond):
        tree = dijkstra_tree(diamond, 0)
        assert 3 in tree


class TestPathHelpers:
    def test_shortest_path_function(self, diamond):
        path = shortest_path(diamond, 0, 3)
        assert path_cost(diamond, path) == 2.0

    def test_shortest_path_unreachable(self):
        g = Graph([(0, 1)])
        g.add_vertex(5)
        assert shortest_path(g, 0, 5) == []

    def test_path_cost_single_vertex(self, diamond):
        assert path_cost(diamond, [2]) == 0.0
