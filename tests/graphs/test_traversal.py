import pytest

from repro.generators import grid_2d
from repro.graphs import Graph, bfs_distances, bfs_order, dfs_order
from repro.util.errors import GraphError


class TestBfsOrder:
    def test_starts_at_source(self, small_grid):
        assert bfs_order(small_grid, (0, 0))[0] == (0, 0)

    def test_visits_component_exactly_once(self, small_grid):
        order = bfs_order(small_grid, (0, 0))
        assert len(order) == 25
        assert len(set(order)) == 25

    def test_missing_source(self, small_grid):
        with pytest.raises(GraphError):
            bfs_order(small_grid, "nope")

    def test_allowed_restriction(self):
        g = grid_2d(3)
        keep = {v for v in g.vertices() if v[1] != 1}
        order = bfs_order(g, (0, 0), allowed=keep)
        assert set(order) == {(0, 0), (1, 0), (2, 0)}


class TestBfsDistances:
    def test_hop_counts_ignore_weights(self):
        g = Graph([(0, 1, 100.0), (1, 2, 100.0), (0, 2, 1.0)])
        dist = bfs_distances(g, 0)
        assert dist[2] == 1  # one hop despite heavy weight

    def test_unreachable_absent(self):
        g = Graph([(0, 1)])
        g.add_vertex(9)
        assert 9 not in bfs_distances(g, 0)


class TestDfsOrder:
    def test_preorder_starts_at_source(self, small_grid):
        assert dfs_order(small_grid, (0, 0))[0] == (0, 0)

    def test_covers_component(self, small_grid):
        assert len(dfs_order(small_grid, (0, 0))) == 25

    def test_deterministic(self, small_grid):
        assert dfs_order(small_grid, (0, 0)) == dfs_order(small_grid, (0, 0))
