import pytest

networkx = pytest.importorskip("networkx")

from repro.graphs import Graph
from repro.graphs.converters import from_networkx, to_networkx


class TestToNetworkx:
    def test_structure_and_weights(self, triangle):
        nx_g = to_networkx(triangle)
        assert nx_g.number_of_nodes() == 3
        assert nx_g.number_of_edges() == 3
        assert nx_g[0][2]["weight"] == 2.5

    def test_isolated_vertices(self):
        g = Graph()
        g.add_vertex("solo")
        assert "solo" in to_networkx(g)


class TestFromNetworkx:
    def test_round_trip(self, triangle):
        assert from_networkx(to_networkx(triangle)) == triangle

    def test_default_weight_applied(self):
        nx_g = networkx.Graph()
        nx_g.add_edge(0, 1)  # no weight attribute
        g = from_networkx(nx_g, default_weight=3.0)
        assert g.weight(0, 1) == 3.0

    def test_distances_agree_with_networkx(self):
        nx_g = networkx.erdos_renyi_graph(30, 0.2, seed=4)
        for u, v in nx_g.edges():
            nx_g[u][v]["weight"] = 1.0 + (u + v) % 5
        g = from_networkx(nx_g)
        from repro.graphs import dijkstra

        source = 0
        ours, _ = dijkstra(g, source)
        theirs = networkx.single_source_dijkstra_path_length(nx_g, source)
        assert set(ours) == set(theirs)
        for v, d in theirs.items():
            assert ours[v] == pytest.approx(d)
