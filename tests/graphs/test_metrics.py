import pytest

from repro.generators import cycle_graph, grid_2d, path_graph, random_tree
from repro.graphs import Graph
from repro.graphs.metrics import (
    aspect_ratio,
    diameter,
    double_sweep_diameter,
    eccentricities,
    radius_and_center,
)
from repro.util.errors import GraphError, NotConnectedError


class TestEccentricities:
    def test_path_graph(self):
        eccs = eccentricities(path_graph(5))
        assert eccs[0] == 4 and eccs[2] == 2

    def test_disconnected_rejected(self):
        g = Graph([(0, 1)])
        g.add_vertex(9)
        with pytest.raises(NotConnectedError):
            eccentricities(g)


class TestDiameter:
    def test_grid(self):
        assert diameter(grid_2d(4)) == 6

    def test_cycle(self):
        assert diameter(cycle_graph(8)) == 4

    def test_weighted(self):
        g = Graph([(0, 1, 2.5), (1, 2, 3.5)])
        assert diameter(g) == 6.0

    def test_trivial(self):
        g = Graph()
        g.add_vertex(0)
        assert diameter(g) == 0.0


class TestRadiusAndCenter:
    def test_path_center(self):
        radius, center = radius_and_center(path_graph(7))
        assert radius == 3 and center == 3

    def test_radius_at_most_diameter(self):
        g = random_tree(40, weight_range=(1.0, 5.0), seed=1)
        radius, _ = radius_and_center(g)
        assert radius <= diameter(g) <= 2 * radius

    def test_empty_rejected(self):
        with pytest.raises(GraphError):
            radius_and_center(Graph())


class TestDoubleSweep:
    def test_exact_on_trees(self):
        for seed in range(5):
            g = random_tree(50, weight_range=(0.5, 3.0), seed=seed)
            assert double_sweep_diameter(g) == pytest.approx(diameter(g))

    def test_lower_bound_in_general(self):
        g = grid_2d(6, weight_range=(1.0, 4.0), seed=2)
        assert double_sweep_diameter(g) <= diameter(g) + 1e-9

    def test_within_factor_two(self):
        g = cycle_graph(12)
        assert double_sweep_diameter(g) >= diameter(g) / 2


class TestAspectRatio:
    def test_unit_grid(self):
        assert aspect_ratio(grid_2d(5), exact=True) == pytest.approx(8.0)

    def test_approx_is_lower_bound(self):
        g = grid_2d(5, weight_range=(1.0, 6.0), seed=3)
        assert aspect_ratio(g) <= aspect_ratio(g, exact=True) + 1e-9

    def test_single_vertex(self):
        g = Graph()
        g.add_vertex("x")
        assert aspect_ratio(g) == 1.0

    def test_scales_with_weights(self):
        narrow = aspect_ratio(grid_2d(5), exact=True)
        wide = aspect_ratio(grid_2d(5, weight_range=(1.0, 100.0), seed=4), exact=True)
        assert wide > narrow
