import pytest

from repro.graphs import Graph, induced_subgraph, remove_vertices
from repro.graphs.ops import disjoint_union, relabel, reweighted


class TestInducedSubgraph:
    def test_keeps_internal_edges_only(self, triangle):
        sub = induced_subgraph(triangle, {0, 1})
        assert sub.num_vertices == 2
        assert sub.has_edge(0, 1)
        assert sub.num_edges == 1

    def test_preserves_weights(self, triangle):
        sub = induced_subgraph(triangle, {0, 2})
        assert sub.weight(0, 2) == 2.5

    def test_foreign_vertices_ignored(self, triangle):
        sub = induced_subgraph(triangle, {0, 77})
        assert sub.num_vertices == 1

    def test_original_untouched(self, triangle):
        induced_subgraph(triangle, {0})
        assert triangle.num_edges == 3


class TestRemoveVertices:
    def test_removal(self, triangle):
        out = remove_vertices(triangle, {1})
        assert 1 not in out
        assert out.has_edge(0, 2)

    def test_remove_nothing(self, triangle):
        assert remove_vertices(triangle, set()) == triangle


class TestDisjointUnion:
    def test_combines(self):
        a = Graph([(0, 1, 1.0)])
        b = Graph([(2, 3, 2.0)])
        u = disjoint_union(a, b)
        assert u.num_vertices == 4 and u.num_edges == 2

    def test_overlapping_weight_taken_from_second(self):
        a = Graph([(0, 1, 1.0)])
        b = Graph([(0, 1, 9.0)])
        assert disjoint_union(a, b).weight(0, 1) == 9.0


class TestRelabel:
    def test_mapping_applied(self, triangle):
        out = relabel(triangle, lambda v: f"v{v}")
        assert out.has_edge("v0", "v1")
        assert out.weight("v0", "v2") == 2.5

    def test_structure_preserved(self, triangle):
        out = relabel(triangle, lambda v: v + 10)
        assert out.num_edges == triangle.num_edges


class TestReweighted:
    def test_doubling_weights(self, triangle):
        out = reweighted(triangle, lambda u, v, w: 2 * w)
        assert out.weight(0, 1) == 2.0

    def test_weight_fn_sees_endpoints(self, triangle):
        out = reweighted(triangle, lambda u, v, w: float(u + v + 1))
        assert out.weight(1, 2) == 4.0
