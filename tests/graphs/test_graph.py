import pytest

from repro.graphs import Graph
from repro.util.errors import GraphError


class TestConstruction:
    def test_empty(self):
        g = Graph()
        assert g.num_vertices == 0
        assert g.num_edges == 0

    def test_from_unweighted_pairs(self):
        g = Graph([(0, 1), (1, 2)])
        assert g.num_edges == 2
        assert g.weight(0, 1) == 1.0

    def test_from_weighted_triples(self):
        g = Graph([(0, 1, 3.5)])
        assert g.weight(0, 1) == 3.5

    def test_mixed_vertex_types(self):
        g = Graph()
        g.add_edge("a", (1, 2), 2.0)
        assert "a" in g and (1, 2) in g


class TestMutation:
    def test_add_vertex_idempotent(self):
        g = Graph()
        g.add_vertex(5)
        g.add_vertex(5)
        assert g.num_vertices == 1

    def test_add_edge_creates_vertices(self):
        g = Graph()
        g.add_edge(1, 2)
        assert 1 in g and 2 in g

    def test_re_add_edge_overwrites_weight(self):
        g = Graph([(0, 1, 1.0)])
        g.add_edge(0, 1, 9.0)
        assert g.weight(0, 1) == 9.0
        assert g.num_edges == 1

    def test_self_loop_rejected(self):
        g = Graph()
        with pytest.raises(GraphError):
            g.add_edge(3, 3)

    def test_nonpositive_weight_rejected(self):
        g = Graph()
        with pytest.raises(GraphError):
            g.add_edge(0, 1, 0.0)
        with pytest.raises(GraphError):
            g.add_edge(0, 1, -2.0)

    def test_remove_edge(self):
        g = Graph([(0, 1), (1, 2)])
        g.remove_edge(0, 1)
        assert not g.has_edge(0, 1)
        assert g.has_edge(1, 2)
        assert 0 in g  # vertex survives

    def test_remove_missing_edge_raises(self):
        g = Graph([(0, 1)])
        with pytest.raises(GraphError):
            g.remove_edge(0, 2)

    def test_remove_vertex_cleans_incident_edges(self):
        g = Graph([(0, 1), (1, 2), (0, 2)])
        g.remove_vertex(1)
        assert 1 not in g
        assert g.num_edges == 1
        assert g.has_edge(0, 2)

    def test_remove_missing_vertex_raises(self):
        with pytest.raises(GraphError):
            Graph().remove_vertex(0)


class TestQueries:
    def test_edges_yields_each_once(self, triangle):
        edges = list(triangle.edges())
        assert len(edges) == 3
        seen = {frozenset((u, v)) for u, v, _ in edges}
        assert len(seen) == 3

    def test_degree(self, triangle):
        assert triangle.degree(0) == 2

    def test_degree_missing_vertex(self, triangle):
        with pytest.raises(GraphError):
            triangle.degree(99)

    def test_weight_missing_edge(self, triangle):
        with pytest.raises(GraphError):
            triangle.weight(0, 99)

    def test_total_and_max_weight(self, triangle):
        assert triangle.total_weight() == pytest.approx(5.5)
        assert triangle.max_weight() == pytest.approx(2.5)

    def test_max_weight_empty(self):
        assert Graph().max_weight() == 0.0

    def test_len_and_iter(self, triangle):
        assert len(triangle) == 3
        assert sorted(triangle) == [0, 1, 2]

    def test_neighbor_items(self, triangle):
        items = dict(triangle.neighbor_items(0))
        assert items == {1: 1.0, 2: 2.5}


class TestCopyAndEquality:
    def test_copy_is_deep_for_structure(self, triangle):
        clone = triangle.copy()
        clone.remove_edge(0, 1)
        assert triangle.has_edge(0, 1)

    def test_equality(self):
        a = Graph([(0, 1, 2.0)])
        b = Graph([(0, 1, 2.0)])
        assert a == b
        b.add_vertex(9)
        assert a != b

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(Graph())

    def test_repr(self, triangle):
        assert repr(triangle) == "Graph(n=3, m=3)"
