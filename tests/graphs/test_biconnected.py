import random

import pytest

from repro.generators import cycle_graph, grid_2d, random_tree
from repro.graphs import Graph
from repro.graphs.biconnected import biconnected_components, is_biconnected


def canonical(blocks):
    return sorted(
        sorted(tuple(sorted(edge, key=repr)) for edge in block)
        for block in blocks
    )


class TestBiconnectedComponents:
    def test_two_triangles_sharing_vertex(self):
        g = Graph([(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)])
        blocks, articulation = biconnected_components(g)
        assert len(blocks) == 2
        assert articulation == {2}

    def test_tree_blocks_are_edges(self):
        g = random_tree(25, seed=1)
        blocks, articulation = biconnected_components(g)
        assert len(blocks) == 24
        assert all(len(b) == 1 for b in blocks)
        internal = {v for v in g.vertices() if g.degree(v) > 1}
        assert articulation == internal

    def test_cycle_single_block(self):
        blocks, articulation = biconnected_components(cycle_graph(8))
        assert len(blocks) == 1
        assert not articulation

    def test_grid_single_block(self):
        blocks, articulation = biconnected_components(grid_2d(4))
        assert len(blocks) == 1
        assert not articulation

    def test_blocks_partition_edges(self):
        g = Graph([(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)])
        blocks, _ = biconnected_components(g)
        all_edges = [e for b in blocks for e in b]
        assert len(all_edges) == g.num_edges
        assert len(set(all_edges)) == g.num_edges

    def test_disconnected_graph(self):
        g = Graph([(0, 1), (1, 2), (0, 2)])
        g.add_edge(10, 11)
        blocks, articulation = biconnected_components(g)
        assert len(blocks) == 2
        assert not articulation

    def test_cross_check_networkx(self):
        networkx = pytest.importorskip("networkx")
        from repro.graphs.converters import to_networkx

        rng = random.Random(0)
        for _ in range(25):
            n = rng.randint(3, 30)
            g = Graph()
            g.add_vertex(0)
            for v in range(1, n):
                g.add_edge(rng.randrange(v), v)
            for _ in range(rng.randint(0, 20)):
                u, v = rng.randrange(n), rng.randrange(n)
                if u != v and not g.has_edge(u, v):
                    g.add_edge(u, v)
            blocks, articulation = biconnected_components(g)
            nx_graph = to_networkx(g)
            assert articulation == set(networkx.articulation_points(nx_graph))
            theirs = [
                {frozenset(e) for e in comp}
                for comp in networkx.biconnected_component_edges(nx_graph)
            ]
            assert canonical(blocks) == canonical(theirs)


class TestIsBiconnected:
    def test_cycle(self):
        assert is_biconnected(cycle_graph(5))

    def test_path_is_not(self):
        assert not is_biconnected(Graph([(0, 1), (1, 2)]))

    def test_single_edge(self):
        assert is_biconnected(Graph([(0, 1)]))

    def test_disconnected(self):
        g = Graph([(0, 1)])
        g.add_vertex(9)
        assert not is_biconnected(g)
