import pytest

from repro.graphs import Graph
from repro.graphs.io import read_edge_list, write_edge_list
from repro.util.errors import GraphError


class TestRoundTrip:
    def test_weighted_graph(self, tmp_path, triangle):
        path = tmp_path / "g.txt"
        write_edge_list(triangle, path)
        back = read_edge_list(path)
        assert back == triangle

    def test_isolated_vertices_survive(self, tmp_path):
        g = Graph([(0, 1)])
        g.add_vertex(42)
        path = tmp_path / "g.txt"
        write_edge_list(g, path)
        back = read_edge_list(path)
        assert 42 in back
        assert back.num_vertices == 3

    def test_string_vertices(self, tmp_path):
        g = Graph([("alpha", "beta", 2.0)])
        path = tmp_path / "g.txt"
        write_edge_list(g, path)
        back = read_edge_list(path)
        assert back.weight("alpha", "beta") == 2.0


class TestParsing:
    def test_comments_and_blanks_ignored(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# comment\n\n0 1 2.5\n")
        g = read_edge_list(path)
        assert g.weight(0, 1) == 2.5

    def test_unweighted_lines_default_weight(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("3 4\n")
        assert read_edge_list(path).weight(3, 4) == 1.0

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 2 3\n")
        with pytest.raises(GraphError):
            read_edge_list(path)
