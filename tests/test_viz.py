import pytest

from repro.core import GreedyPeelingEngine
from repro.generators import grid_2d, random_delaunay_graph
from repro.graphs import Graph
from repro.util.errors import GraphError
from repro.viz import grid_positions, render_svg, save_svg


class TestGridPositions:
    def test_coordinates(self):
        g = grid_2d(3)
        pos = grid_positions(g)
        assert pos[(1, 2)] == (2.0, 1.0)

    def test_non_grid_rejected(self):
        g = Graph([(0, 1)])
        with pytest.raises(GraphError):
            grid_positions(g)


class TestRenderSvg:
    def test_basic_structure(self):
        g = grid_2d(4)
        svg = render_svg(g, grid_positions(g))
        assert svg.startswith("<svg")
        assert svg.rstrip().endswith("</svg>")
        assert svg.count("<circle") == g.num_vertices
        assert svg.count("<line") == g.num_edges

    def test_separator_highlighted(self):
        g = grid_2d(8)
        sep = GreedyPeelingEngine(seed=0).find_separator(g)
        svg = render_svg(g, grid_positions(g), separator=sep)
        multi_vertex_paths = sum(1 for p in sep.all_paths() if len(p) > 1)
        assert svg.count("<polyline") == multi_vertex_paths
        assert "#d62728" in svg  # phase-0 color used

    def test_delaunay_positions(self):
        g, pos = random_delaunay_graph(60, seed=1)
        svg = render_svg(g, pos)
        assert svg.count("<circle") == 60

    def test_missing_position_rejected(self):
        g = grid_2d(2)
        with pytest.raises(GraphError):
            render_svg(g, {})

    def test_empty_graph(self):
        svg = render_svg(Graph(), {})
        assert svg.startswith("<svg")

    def test_save(self, tmp_path):
        g = grid_2d(3)
        out = tmp_path / "g.svg"
        save_svg(render_svg(g, grid_positions(g)), out)
        assert out.read_text().startswith("<svg")

    def test_single_vertex(self):
        g = Graph()
        g.add_vertex((0, 0))
        svg = render_svg(g, {(0, 0): (0.0, 0.0)})
        assert svg.count("<circle") == 1
