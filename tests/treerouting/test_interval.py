import random

import pytest

from repro.generators import balanced_tree, random_tree
from repro.graphs import dijkstra_tree
from repro.treerouting import IntervalTreeRouting, dfs_intervals
from repro.util.errors import GraphError


def tree_routing_for(graph, root):
    tree = dijkstra_tree(graph, root)
    return IntervalTreeRouting(tree.parent, root), tree


class TestDfsIntervals:
    def test_root_covers_everything(self):
        children = {0: [1, 2], 1: [3], 2: [], 3: []}
        iv = dfs_intervals(children, 0)
        assert iv[0] == (0, 4)

    def test_nesting(self):
        children = {0: [1, 2], 1: [3], 2: [], 3: []}
        iv = dfs_intervals(children, 0)
        for child, parent in [(1, 0), (2, 0), (3, 1)]:
            lo_c, hi_c = iv[child]
            lo_p, hi_p = iv[parent]
            assert lo_p < lo_c and hi_c <= hi_p

    def test_siblings_disjoint(self):
        children = {0: [1, 2], 1: [], 2: []}
        iv = dfs_intervals(children, 0)
        (l1, h1), (l2, h2) = iv[1], iv[2]
        assert h1 <= l2 or h2 <= l1

    def test_single_vertex(self):
        assert dfs_intervals({0: []}, 0) == {0: (0, 1)}


class TestRouting:
    def test_route_reaches_target(self):
        g = random_tree(60, seed=1)
        routing, _ = tree_routing_for(g, 0)
        rng = random.Random(2)
        vs = sorted(g.vertices())
        for _ in range(40):
            s, t = rng.choice(vs), rng.choice(vs)
            path = routing.route(s, t)
            assert path[0] == s and path[-1] == t

    def test_route_is_tree_path(self):
        # On a tree there is a unique path; routing must find exactly it.
        g = balanced_tree(2, 4)
        routing, tree = tree_routing_for(g, 0)
        from repro.graphs import shortest_path

        path = routing.route(14, 3)
        assert path == shortest_path(g, 14, 3)

    def test_route_to_self(self):
        g = random_tree(10, seed=3)
        routing, _ = tree_routing_for(g, 0)
        assert routing.route(5, 5) == [5]

    def test_next_hop_none_at_target(self):
        g = random_tree(10, seed=4)
        routing, _ = tree_routing_for(g, 0)
        assert routing.next_hop(7, routing.label(7)) is None

    def test_foreign_label_rejected_at_root(self):
        g = random_tree(10, seed=5)
        routing, _ = tree_routing_for(g, 0)
        with pytest.raises(GraphError):
            routing.next_hop(0, 10**9)

    def test_labels_are_single_words(self):
        g = random_tree(30, seed=6)
        routing, _ = tree_routing_for(g, 0)
        labels = {routing.label(v) for v in g.vertices()}
        assert len(labels) == 30  # unique
        assert all(isinstance(l, int) for l in labels)

    def test_table_words_scale_with_degree(self):
        g = balanced_tree(4, 2)
        routing, _ = tree_routing_for(g, 0)
        words = routing.table_words()
        assert words[0] > words[5]  # root has 4 children; a leaf none

    def test_bad_parent_map_rejected(self):
        with pytest.raises(GraphError):
            IntervalTreeRouting({0: None, 1: 99}, 0)
