import pytest

from repro.baselines import LandmarkOracle
from repro.generators import grid_2d
from repro.graphs import dijkstra
from repro.util.errors import GraphError

from tests.conftest import pair_sample


class TestLandmarkOracle:
    def test_upper_bound_property(self):
        g = grid_2d(7, weight_range=(1.0, 5.0), seed=1)
        oracle = LandmarkOracle(g, num_landmarks=6, seed=0)
        for u, v in pair_sample(g, 60, seed=2):
            true = dijkstra(g, u)[0][v]
            assert oracle.query(u, v) >= true - 1e-9

    def test_lower_bound_property(self):
        g = grid_2d(6)
        oracle = LandmarkOracle(g, num_landmarks=5, seed=0)
        for u, v in pair_sample(g, 60, seed=3):
            true = dijkstra(g, u)[0][v]
            assert oracle.lower_bound(u, v) <= true + 1e-9

    def test_landmark_to_landmark_exact(self):
        g = grid_2d(6)
        oracle = LandmarkOracle(g, num_landmarks=4, seed=1)
        l0 = oracle.landmarks[0]
        for v in g.vertices():
            true = dijkstra(g, l0)[0][v]
            assert oracle.query(l0, v) == pytest.approx(true)

    def test_identity(self):
        oracle = LandmarkOracle(grid_2d(4), num_landmarks=2, seed=0)
        assert oracle.query((0, 0), (0, 0)) == 0.0
        assert oracle.lower_bound((0, 0), (0, 0)) == 0.0

    def test_more_landmarks_never_worse(self):
        g = grid_2d(7)
        few = LandmarkOracle(g, num_landmarks=2, seed=5)
        many = LandmarkOracle(g, num_landmarks=20, seed=5)
        worse = 0
        pairs = pair_sample(g, 50, seed=6)
        few_sum = sum(few.query(u, v) for u, v in pairs)
        many_sum = sum(many.query(u, v) for u, v in pairs)
        assert many_sum <= few_sum + 1e-9

    def test_landmark_cap(self):
        g = grid_2d(3)
        oracle = LandmarkOracle(g, num_landmarks=100, seed=0)
        assert len(oracle.landmarks) == 9

    def test_invalid_count(self):
        with pytest.raises(GraphError):
            LandmarkOracle(grid_2d(3), num_landmarks=0)

    def test_size_report(self):
        g = grid_2d(4)
        oracle = LandmarkOracle(g, num_landmarks=3, seed=0)
        report = oracle.size_report()
        assert report.max_words == 6  # 2 words per landmark
