import pytest

from repro.baselines.alt import AltOracle, farthest_landmarks
from repro.generators import grid_2d, road_network
from repro.graphs import Graph, dijkstra
from repro.util.errors import GraphError

from tests.conftest import pair_sample


class TestFarthestLandmarks:
    def test_count_respected(self):
        g = grid_2d(6)
        assert len(farthest_landmarks(g, 5, seed=0)) == 5

    def test_capped_at_n(self):
        g = grid_2d(2)
        assert len(farthest_landmarks(g, 100, seed=0)) <= 4

    def test_spread_out(self):
        # On a path graph, two farthest landmarks are near the two ends.
        from repro.generators import path_graph

        g = path_graph(50)
        a, b = farthest_landmarks(g, 2, seed=1)
        assert abs(a - b) >= 25

    def test_invalid_count(self):
        with pytest.raises(GraphError):
            farthest_landmarks(grid_2d(3), 0)


class TestAltOracle:
    def test_exactness(self):
        g = road_network(12, seed=1)
        alt = AltOracle(g, num_landmarks=6, seed=0)
        for u, v in pair_sample(g, 60, seed=2):
            true = dijkstra(g, u)[0][v]
            assert alt.query(u, v) == pytest.approx(true)

    def test_identity(self):
        alt = AltOracle(grid_2d(4), num_landmarks=2, seed=0)
        assert alt.query((0, 0), (0, 0)) == 0.0

    def test_disconnected(self):
        g = Graph([(0, 1)])
        g.add_vertex(9)
        alt = AltOracle(g, num_landmarks=1, seed=0)
        assert alt.query(0, 9) == float("inf")

    def test_settles_fewer_vertices_than_dijkstra(self):
        # The point of ALT: the goal-directed search explores less.
        g = grid_2d(14)
        alt = AltOracle(g, num_landmarks=8, seed=0)
        total_alt = 0
        total_dij = 0
        for u, v in pair_sample(g, 20, seed=3):
            alt.query(u, v)
            total_alt += alt.last_settled
            total_dij += len(dijkstra(g, u)[0])
        assert total_alt < total_dij

    def test_unknown_vertex_rejected(self):
        alt = AltOracle(grid_2d(3), num_landmarks=2, seed=0)
        with pytest.raises(GraphError):
            alt.query((0, 0), "ghost")

    def test_weighted_exactness(self):
        g = grid_2d(8, weight_range=(1.0, 9.0), seed=4)
        alt = AltOracle(g, num_landmarks=4, seed=0)
        for u, v in pair_sample(g, 40, seed=5):
            true = dijkstra(g, u)[0][v]
            assert alt.query(u, v) == pytest.approx(true)
