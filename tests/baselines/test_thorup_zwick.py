import pytest

from repro.baselines import ThorupZwickOracle
from repro.generators import grid_2d, random_delaunay_graph, random_regular_graph
from repro.graphs import Graph, dijkstra
from repro.util.errors import GraphError

from tests.conftest import pair_sample


class TestStretchGuarantee:
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_stretch_at_most_2k_minus_1(self, k):
        g = grid_2d(7, weight_range=(1.0, 4.0), seed=1)
        oracle = ThorupZwickOracle(g, k=k, seed=0)
        for u, v in pair_sample(g, 80, seed=2):
            true = dijkstra(g, u)[0][v]
            est = oracle.query(u, v)
            assert true - 1e-9 <= est <= (2 * k - 1) * true + 1e-9

    def test_k1_is_exact(self):
        # k=1 stores full distances: stretch exactly 1.
        g = random_regular_graph(30, 3, seed=3)
        oracle = ThorupZwickOracle(g, k=1, seed=0)
        for u, v in pair_sample(g, 40, seed=4):
            true = dijkstra(g, u)[0][v]
            assert oracle.query(u, v) == pytest.approx(true)

    def test_on_delaunay(self):
        g, _ = random_delaunay_graph(80, seed=5)
        oracle = ThorupZwickOracle(g, k=2, seed=1)
        for u, v in pair_sample(g, 60, seed=6):
            true = dijkstra(g, u)[0][v]
            est = oracle.query(u, v)
            assert true - 1e-9 <= est <= 3 * true + 1e-9


class TestStructure:
    def test_identity(self):
        oracle = ThorupZwickOracle(grid_2d(4), k=2)
        assert oracle.query((0, 0), (0, 0)) == 0.0

    def test_invalid_k(self):
        with pytest.raises(GraphError):
            ThorupZwickOracle(grid_2d(3), k=0)

    def test_disconnected(self):
        g = Graph([(0, 1)])
        g.add_vertex(9)
        oracle = ThorupZwickOracle(g, k=2, seed=0)
        assert oracle.query(0, 9) == float("inf")

    def test_space_subquadratic_for_k2(self):
        # k=2 space should be well below the n^2 of full APSP.
        g = grid_2d(10)
        oracle = ThorupZwickOracle(g, k=2, seed=0)
        n = g.num_vertices
        assert oracle.space_words() < 2 * n * n

    def test_bunches_contain_self_level_pivots(self):
        g = grid_2d(5)
        oracle = ThorupZwickOracle(g, k=2, seed=0)
        # Every vertex's bunch contains its own nearest A_1 pivot
        # (clusters of A_1 vertices are unbounded).
        for v in g.vertices():
            p1 = oracle.pivots[v][1]
            if p1 is not None:
                assert p1 in oracle.bunch[v]

    def test_empty_graph(self):
        oracle = ThorupZwickOracle(Graph(), k=2)
        assert oracle.bunch == {}
