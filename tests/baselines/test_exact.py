import pytest

from repro.baselines import ExactOracle, all_pairs_shortest_paths
from repro.generators import grid_2d
from repro.graphs import Graph, dijkstra


class TestAllPairs:
    def test_matches_dijkstra(self):
        g = grid_2d(4, weight_range=(1.0, 3.0), seed=1)
        apsp = all_pairs_shortest_paths(g)
        for u in g.vertices():
            dist, _ = dijkstra(g, u)
            assert apsp[u] == dist

    def test_symmetric(self):
        g = grid_2d(3)
        apsp = all_pairs_shortest_paths(g)
        for u in g.vertices():
            for v in g.vertices():
                assert apsp[u][v] == apsp[v][u]


class TestExactOracle:
    def test_query(self):
        g = grid_2d(5)
        oracle = ExactOracle(g)
        assert oracle.query((0, 0), (4, 4)) == 8.0

    def test_identity(self):
        oracle = ExactOracle(grid_2d(3))
        assert oracle.query((1, 1), (1, 1)) == 0.0

    def test_cache_reused_for_same_source(self):
        g = grid_2d(4)
        oracle = ExactOracle(g)
        oracle.query((0, 0), (1, 1))
        assert (0, 0) in oracle._cache
        assert oracle.query((0, 0), (3, 3)) == 6.0

    def test_reverse_query_uses_cache(self):
        g = grid_2d(4)
        oracle = ExactOracle(g)
        oracle.query((0, 0), (3, 3))
        # Querying with the cached vertex second still hits the cache.
        oracle.query((2, 2), (0, 0))
        assert (0, 0) in oracle._cache

    def test_disconnected_inf(self):
        g = Graph([(0, 1)])
        g.add_vertex(5)
        assert ExactOracle(g).query(0, 5) == float("inf")

    def test_uncached_matches_cached(self):
        g = grid_2d(4, weight_range=(1.0, 5.0), seed=2)
        oracle = ExactOracle(g)
        assert oracle.query_uncached((0, 0), (3, 1)) == oracle.query((0, 0), (3, 1))

    def test_cache_eviction(self):
        g = grid_2d(3)
        oracle = ExactOracle(g, cache_size=2)
        vs = sorted(g.vertices())
        for u in vs[:4]:
            oracle.query(u, vs[-1])
        assert len(oracle._cache) <= 2
