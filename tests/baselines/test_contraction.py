import pytest

from repro.baselines.contraction import ContractionHierarchy
from repro.generators import (
    grid_2d,
    random_delaunay_graph,
    random_tree,
    road_network,
)
from repro.graphs import Graph, dijkstra
from repro.util.errors import GraphError

from tests.conftest import pair_sample


class TestCorrectness:
    @pytest.mark.parametrize(
        "maker",
        [
            lambda: road_network(12, seed=1),
            lambda: random_delaunay_graph(120, seed=2)[0],
            lambda: grid_2d(9, weight_range=(1.0, 9.0), seed=3),
            lambda: random_tree(80, weight_range=(0.5, 4.0), seed=4),
        ],
        ids=["road", "delaunay", "weighted_grid", "tree"],
    )
    def test_exact_on_family(self, maker):
        g = maker()
        ch = ContractionHierarchy(g)
        for u, v in pair_sample(g, 60, seed=5):
            true = dijkstra(g, u)[0][v]
            assert ch.query(u, v) == pytest.approx(true)

    def test_identity(self):
        ch = ContractionHierarchy(grid_2d(4))
        assert ch.query((0, 0), (0, 0)) == 0.0

    def test_disconnected_inf(self):
        g = Graph([(0, 1, 2.0)])
        g.add_vertex(9)
        ch = ContractionHierarchy(g)
        assert ch.query(0, 9) == float("inf")

    def test_unknown_vertex_rejected(self):
        ch = ContractionHierarchy(grid_2d(3))
        with pytest.raises(GraphError):
            ch.query((0, 0), "ghost")


class TestHierarchyStructure:
    def test_every_vertex_ranked(self):
        g = grid_2d(6)
        ch = ContractionHierarchy(g)
        assert set(ch.rank) == set(g.vertices())
        assert sorted(ch.rank.values()) == list(range(36))

    def test_upward_edges_point_up(self):
        g = road_network(8, seed=6)
        ch = ContractionHierarchy(g)
        for v, edges in ch.upward.items():
            for u, _ in edges:
                assert ch.rank[u] > ch.rank[v]

    def test_queries_settle_fewer_than_dijkstra(self):
        g = grid_2d(12)
        ch = ContractionHierarchy(g)
        total_ch = total_dij = 0
        for u, v in pair_sample(g, 25, seed=7):
            ch.query(u, v)
            total_ch += ch.last_settled
            total_dij += len(dijkstra(g, u)[0])
        assert total_ch < total_dij / 2

    def test_shortcut_count_reasonable(self):
        # Planar-ish graphs have near-linear CH sizes in practice.
        g = random_delaunay_graph(150, seed=8)[0]
        ch = ContractionHierarchy(g)
        assert ch.num_shortcuts < 6 * g.num_vertices

    def test_size_report(self):
        g = grid_2d(5)
        ch = ContractionHierarchy(g)
        report = ch.size_report()
        assert set(report.per_vertex) == set(g.vertices())
        # Total upward edges = original edges + shortcuts.
        assert report.total_words == 2 * (g.num_edges + ch.num_shortcuts)


class TestHopLimit:
    def test_small_hop_limit_still_exact(self):
        # Missing witnesses only add shortcuts; correctness persists.
        g = grid_2d(8, weight_range=(1.0, 5.0), seed=9)
        loose = ContractionHierarchy(g, hop_limit=2)
        for u, v in pair_sample(g, 40, seed=10):
            true = dijkstra(g, u)[0][v]
            assert loose.query(u, v) == pytest.approx(true)

    def test_smaller_hop_limit_more_shortcuts(self):
        g = grid_2d(8, weight_range=(1.0, 5.0), seed=11)
        loose = ContractionHierarchy(g, hop_limit=1)
        tight = ContractionHierarchy(g, hop_limit=64)
        assert loose.num_shortcuts >= tight.num_shortcuts
