import random
from collections import Counter

import pytest

from repro.baselines import KleinbergAugmentation, UniformAugmentation
from repro.core import GreedyRouter
from repro.generators import grid_2d
from repro.graphs import dijkstra
from repro.util.errors import GraphError

from tests.conftest import pair_sample


class TestKleinberg:
    def test_every_vertex_gets_contact(self):
        g = grid_2d(6)
        aug = KleinbergAugmentation(exponent=2.0).augment(g, seed=1)
        assert aug.num_long_edges == g.num_vertices

    def test_harmonic_bias_prefers_near_contacts(self):
        g = grid_2d(9)
        rng = random.Random(2)
        v = (4, 4)
        dist, _ = dijkstra(g, v)
        draws = [
            KleinbergAugmentation(exponent=2.0).sample_contact(g, v, rng)
            for _ in range(150)
        ]
        mean_harmonic = sum(dist[u] for u in draws) / len(draws)
        draws_uniform = [
            UniformAugmentation().sample_contact(g, v, rng) for _ in range(150)
        ]
        mean_uniform = sum(dist[u] for u in draws_uniform) / len(draws_uniform)
        assert mean_harmonic < mean_uniform

    def test_exponent_zero_is_uniformish(self):
        g = grid_2d(5)
        rng = random.Random(3)
        draws = Counter(
            KleinbergAugmentation(exponent=0.0).sample_contact(g, (2, 2), rng)
            for _ in range(300)
        )
        # No single contact should dominate.
        assert max(draws.values()) < 60

    def test_invalid_exponent(self):
        with pytest.raises(GraphError):
            KleinbergAugmentation(exponent=-1.0)

    def test_contact_is_never_self(self):
        g = grid_2d(4)
        rng = random.Random(4)
        for _ in range(50):
            assert KleinbergAugmentation(2.0).sample_contact(g, (0, 0), rng) != (0, 0)


class TestUniform:
    def test_contact_uniform_support(self):
        g = grid_2d(3)
        rng = random.Random(5)
        draws = {UniformAugmentation().sample_contact(g, (0, 0), rng) for _ in range(400)}
        assert len(draws) == 8  # all other vertices appear

    def test_singleton_graph(self):
        from repro.graphs import Graph

        g = Graph()
        g.add_vertex(0)
        assert UniformAugmentation().sample_contact(g, 0, random.Random(0)) is None


class TestGreedyComparison:
    def test_both_augmentations_beat_no_augmentation(self):
        # The asymptotic Kleinberg-vs-uniform separation needs larger n
        # (benchmark E6 shows the trend); at test scale we assert the
        # robust fact that any long-range contact helps greedy routing.
        from repro.core import AugmentedGraph

        g = grid_2d(18)
        pairs = pair_sample(g, 60, seed=7)
        plain = GreedyRouter(AugmentedGraph(base=g)).mean_hops(pairs)
        kle = GreedyRouter(
            KleinbergAugmentation(exponent=2.0).augment(g, seed=8)
        ).mean_hops(pairs)
        uni = GreedyRouter(UniformAugmentation().augment(g, seed=8)).mean_hops(pairs)
        assert kle < plain
        assert uni < plain
