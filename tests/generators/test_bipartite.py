import pytest

from repro.generators import complete_bipartite, mesh_with_universal
from repro.graphs import dijkstra, is_connected
from repro.util.errors import GraphError


class TestCompleteBipartite:
    def test_edge_count(self):
        g = complete_bipartite(3, 7)
        assert g.num_edges == 21
        assert g.num_vertices == 10

    def test_degrees(self):
        g = complete_bipartite(2, 5)
        assert g.degree(("a", 0)) == 5
        assert g.degree(("b", 0)) == 2

    def test_no_intra_part_edges(self):
        g = complete_bipartite(3, 3)
        assert not g.has_edge(("a", 0), ("a", 1))
        assert not g.has_edge(("b", 0), ("b", 2))

    def test_invalid(self):
        with pytest.raises(GraphError):
            complete_bipartite(0, 3)


class TestMeshWithUniversal:
    def test_size(self):
        g = mesh_with_universal(4)
        assert g.num_vertices == 17

    def test_hub_universal(self):
        g = mesh_with_universal(3)
        assert g.degree("hub") == 9

    def test_diameter_two(self):
        g = mesh_with_universal(6)
        dist, _ = dijkstra(g, (0, 0))
        assert max(dist.values()) <= 2

    def test_connected(self):
        assert is_connected(mesh_with_universal(5))

    def test_invalid(self):
        with pytest.raises(GraphError):
            mesh_with_universal(1)
