import pytest

from repro.generators import balanced_tree, caterpillar_tree, random_tree, spider_tree
from repro.graphs import is_connected
from repro.util.errors import GraphError


def is_tree(g):
    return is_connected(g) and g.num_edges == g.num_vertices - 1


class TestRandomTree:
    def test_is_tree(self):
        assert is_tree(random_tree(50, seed=1))

    def test_size_one(self):
        g = random_tree(1)
        assert g.num_vertices == 1 and g.num_edges == 0

    def test_reproducible(self):
        assert random_tree(30, seed=5) == random_tree(30, seed=5)

    def test_different_seeds_differ(self):
        assert random_tree(30, seed=5) != random_tree(30, seed=6)

    def test_invalid(self):
        with pytest.raises(GraphError):
            random_tree(0)


class TestBalancedTree:
    def test_node_count(self):
        # 1 + 2 + 4 + 8 = 15 for branching 2, depth 3.
        assert balanced_tree(2, 3).num_vertices == 15

    def test_depth_zero(self):
        g = balanced_tree(3, 0)
        assert g.num_vertices == 1

    def test_is_tree(self):
        assert is_tree(balanced_tree(3, 3))


class TestCaterpillar:
    def test_size(self):
        g = caterpillar_tree(spine=5, legs_per_vertex=2)
        assert g.num_vertices == 5 + 10

    def test_is_tree(self):
        assert is_tree(caterpillar_tree(6, 3))

    def test_no_legs(self):
        g = caterpillar_tree(4, 0)
        assert g.num_vertices == 4


class TestSpider:
    def test_size(self):
        g = spider_tree(legs=4, leg_length=3)
        assert g.num_vertices == 1 + 12

    def test_hub_degree(self):
        assert spider_tree(5, 2).degree(0) == 5

    def test_is_tree(self):
        assert is_tree(spider_tree(3, 4))
