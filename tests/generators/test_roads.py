import pytest

from repro.generators import road_network
from repro.graphs import is_connected
from repro.util.errors import GraphError


class TestRoadNetwork:
    def test_connected(self):
        assert is_connected(road_network(12, seed=1))

    def test_sparser_than_grid(self):
        g = road_network(12, removal_prob=0.3, seed=2)
        full_edges = 2 * 12 * 11
        assert g.num_edges < full_edges

    def test_no_removal_keeps_grid(self):
        g = road_network(8, removal_prob=0.0, seed=3)
        assert g.num_edges == 2 * 8 * 7

    def test_highways_are_cheaper(self):
        g = road_network(16, removal_prob=0.0, highway_every=8, highway_speedup=4.0, seed=4)
        highway = [
            w for (u, v, w) in g.edges()
            if u[0] == v[0] == 0  # row 0 is a highway
        ]
        local = [
            w for (u, v, w) in g.edges()
            if u[0] == v[0] == 1  # row 1 is local
        ]
        assert max(highway) < min(local)

    def test_rectangular(self):
        g = road_network(6, cols=10, removal_prob=0.0, seed=5)
        assert g.num_vertices == 60

    def test_invalid_size(self):
        with pytest.raises(GraphError):
            road_network(1)

    def test_invalid_highway_spacing(self):
        with pytest.raises(GraphError):
            road_network(8, highway_every=0)

    def test_reproducible(self):
        assert road_network(10, seed=6) == road_network(10, seed=6)
