import pytest

from repro.generators import k_tree, partial_k_tree
from repro.graphs import is_connected
from repro.treedecomp import decomposition_from_bags
from repro.util.errors import GraphError


class TestKTree:
    def test_edge_count(self):
        # A k-tree on n vertices has k(k+1)/2 + (n-k-1)k edges.
        g, _ = k_tree(20, 3, seed=1)
        assert g.num_edges == 6 + 16 * 3

    def test_bags_form_valid_decomposition(self):
        g, bags = k_tree(40, 2, seed=2)
        td = decomposition_from_bags(g, bags)  # validates internally
        assert td.width == 2

    def test_bag_sizes(self):
        _, bags = k_tree(25, 4, seed=3)
        assert all(len(b) == 5 for b in bags)

    def test_connected(self):
        g, _ = k_tree(30, 3, seed=4)
        assert is_connected(g)

    def test_too_small_n(self):
        with pytest.raises(GraphError):
            k_tree(3, 3)

    def test_invalid_k(self):
        with pytest.raises(GraphError):
            k_tree(10, 0)

    def test_reproducible(self):
        assert k_tree(20, 2, seed=7)[0] == k_tree(20, 2, seed=7)[0]


class TestPartialKTree:
    def test_connected_despite_drops(self):
        g, _ = partial_k_tree(60, 3, edge_keep_prob=0.3, seed=5)
        assert is_connected(g)

    def test_subgraph_of_full_ktree(self):
        g, _ = partial_k_tree(30, 2, edge_keep_prob=0.5, seed=6)
        full, _ = k_tree(30, 2, seed=6)
        # partial_k_tree draws the same k-tree from the same rng seed
        # only if the seed stream matches; instead check edge subset of
        # *some* width-2 structure: width via bags.
        assert g.num_edges <= full.num_edges

    def test_bags_still_cover(self):
        g, bags = partial_k_tree(40, 3, seed=7)
        td = decomposition_from_bags(g, bags)
        assert td.width == 3

    def test_keep_prob_one_keeps_everything(self):
        g, _ = partial_k_tree(20, 2, edge_keep_prob=1.0, seed=8)
        assert g.num_edges == 1 + 18 * 2  # full 2-tree edge count

    def test_invalid_prob(self):
        with pytest.raises(GraphError):
            partial_k_tree(10, 2, edge_keep_prob=1.5)
