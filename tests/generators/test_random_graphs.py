"""G(n, p) and preferential-attachment generators.

Includes the workload-diversity check from "Vertex-separating path
systems in random graphs" (arXiv 2408.01816): sparse random graphs
above the connectivity threshold are expander-ish, so path-peeling
needs *many* more paths per decomposition node on them than on a
structured (grid) input of the same size.
"""

import pytest

from repro.core import build_decomposition
from repro.core.engines import GreedyPeelingEngine
from repro.generators import (
    default_gnp_p,
    gnp_random_graph,
    grid_2d,
    preferential_attachment_graph,
)
from repro.graphs import is_connected
from repro.util.errors import GraphError


class TestGnp:
    def test_shape_and_determinism(self):
        a = gnp_random_graph(60, 0.1, seed=9)
        b = gnp_random_graph(60, 0.1, seed=9)
        assert a.num_vertices == 60
        assert a == b
        assert a != gnp_random_graph(60, 0.1, seed=10)

    def test_connect_retries_until_connected(self):
        g = gnp_random_graph(80, default_gnp_p(80), seed=2, connect=True)
        assert is_connected(g)

    def test_connect_below_threshold_is_an_honest_failure(self):
        with pytest.raises(GraphError):
            gnp_random_graph(400, 0.0001, seed=0, connect=True, max_tries=3)

    def test_extreme_probabilities(self):
        empty = gnp_random_graph(10, 0.0, seed=0)
        assert empty.num_edges == 0
        complete = gnp_random_graph(10, 1.0, seed=0)
        assert complete.num_edges == 45

    def test_weight_range(self):
        g = gnp_random_graph(30, 0.3, seed=5, weight_range=(2.0, 4.0))
        assert all(2.0 <= w <= 4.0 for _u, _v, w in g.edges())

    def test_validation(self):
        with pytest.raises(GraphError):
            gnp_random_graph(0, 0.5)
        with pytest.raises(GraphError):
            gnp_random_graph(10, 1.5)

    def test_default_p_above_threshold(self):
        for n in (16, 256, 4096):
            assert 0.0 < default_gnp_p(n) <= 1.0


class TestPreferentialAttachment:
    def test_shape_and_determinism(self):
        a = preferential_attachment_graph(60, 3, seed=9)
        b = preferential_attachment_graph(60, 3, seed=9)
        assert a.num_vertices == 60
        assert a == b

    def test_connected_by_construction(self):
        assert is_connected(preferential_attachment_graph(80, 2, seed=1))

    def test_edge_count(self):
        # Vertex m brings m edges; each of the n-m-1 later vertices
        # brings exactly m distinct edges.
        n, m = 50, 3
        g = preferential_attachment_graph(n, m, seed=4)
        assert g.num_edges == m + (n - m - 1) * m

    def test_power_law_hubs_exist(self):
        g = preferential_attachment_graph(300, 2, seed=7)
        degrees = sorted((g.degree(v) for v in g.vertices()), reverse=True)
        # The richest vertex is far above the mean degree (~2m = 4).
        assert degrees[0] >= 4 * 4

    def test_validation(self):
        with pytest.raises(GraphError):
            preferential_attachment_graph(1, 1)
        with pytest.raises(GraphError):
            preferential_attachment_graph(10, 10)


def max_paths_per_node(graph) -> int:
    tree = build_decomposition(graph, engine=GreedyPeelingEngine(seed=0))
    return max(
        sum(len(phase.paths) for phase in node.separator.phases)
        for node in tree.nodes
    )


class TestEmpiricalPathComplexity:
    def test_random_graphs_need_more_paths_than_grids(self):
        # arXiv 2408.01816: expander-ish G(n, p) forces polynomially
        # many separator paths, while a grid of the same size peels
        # with O(1) paths per node.  The measured gap should be wide.
        n = 100
        structured = max_paths_per_node(grid_2d(10, seed=1))
        random_k = max_paths_per_node(
            gnp_random_graph(n, default_gnp_p(n), seed=3, connect=True)
        )
        assert random_k > 3 * structured
