import pytest

from repro.generators import hypercube, random_regular_graph
from repro.graphs import bfs_distances, is_connected
from repro.util.errors import GraphError


class TestHypercube:
    def test_size(self):
        g = hypercube(4)
        assert g.num_vertices == 16
        assert g.num_edges == 4 * 16 // 2

    def test_regular(self):
        g = hypercube(3)
        assert all(g.degree(v) == 3 for v in g.vertices())

    def test_hamming_distance(self):
        g = hypercube(5)
        dist = bfs_distances(g, 0)
        assert dist[0b10101] == 3  # popcount

    def test_invalid(self):
        with pytest.raises(GraphError):
            hypercube(0)


class TestRandomRegular:
    def test_degree_exact(self):
        g = random_regular_graph(40, 3, seed=1)
        assert all(g.degree(v) == 3 for v in g.vertices())

    def test_simple(self):
        g = random_regular_graph(30, 4, seed=2)
        # No self-loops possible by the Graph type; check edge count.
        assert g.num_edges == 30 * 4 // 2

    def test_connected_whp(self):
        # Degree >= 3 random regular graphs are connected w.h.p.
        g = random_regular_graph(100, 3, seed=3)
        assert is_connected(g)

    def test_odd_product_rejected(self):
        with pytest.raises(GraphError):
            random_regular_graph(5, 3)

    def test_degree_bounds(self):
        with pytest.raises(GraphError):
            random_regular_graph(10, 10)

    def test_reproducible(self):
        a = random_regular_graph(20, 3, seed=9)
        b = random_regular_graph(20, 3, seed=9)
        assert a == b
