import pytest

from repro.generators import cycle_graph, grid_2d, grid_3d, path_graph, torus_2d
from repro.graphs import dijkstra, is_connected
from repro.util.errors import GraphError


class TestPathGraph:
    def test_structure(self):
        g = path_graph(5)
        assert g.num_vertices == 5 and g.num_edges == 4

    def test_single_vertex(self):
        g = path_graph(1)
        assert g.num_vertices == 1 and g.num_edges == 0

    def test_invalid_size(self):
        with pytest.raises(GraphError):
            path_graph(0)

    def test_weight_range(self):
        g = path_graph(20, weight_range=(2.0, 3.0), seed=1)
        assert all(2.0 <= w <= 3.0 for _, _, w in g.edges())


class TestCycleGraph:
    def test_structure(self):
        g = cycle_graph(6)
        assert g.num_edges == 6
        assert all(g.degree(v) == 2 for v in g.vertices())

    def test_minimum_size(self):
        with pytest.raises(GraphError):
            cycle_graph(2)


class TestGrid2d:
    def test_dimensions(self):
        g = grid_2d(3, 4)
        assert g.num_vertices == 12
        assert g.num_edges == 3 * 3 + 2 * 4  # horizontal + vertical

    def test_square_default(self):
        assert grid_2d(4).num_vertices == 16

    def test_corner_degrees(self):
        g = grid_2d(3)
        assert g.degree((0, 0)) == 2
        assert g.degree((1, 1)) == 4

    def test_unit_distances_are_manhattan(self):
        g = grid_2d(5)
        dist, _ = dijkstra(g, (0, 0))
        assert dist[(4, 4)] == 8

    def test_seeded_weights_reproducible(self):
        a = grid_2d(4, weight_range=(1, 2), seed=9)
        b = grid_2d(4, weight_range=(1, 2), seed=9)
        assert a == b

    def test_invalid(self):
        with pytest.raises(GraphError):
            grid_2d(0)


class TestTorus2d:
    def test_regular_degree_4(self):
        g = torus_2d(4, 5)
        assert all(g.degree(v) == 4 for v in g.vertices())

    def test_wraparound_shortens_distance(self):
        g = torus_2d(8)
        dist, _ = dijkstra(g, (0, 0))
        assert dist[(7, 0)] == 1

    def test_minimum_size(self):
        with pytest.raises(GraphError):
            torus_2d(2)


class TestGrid3d:
    def test_dimensions(self):
        g = grid_3d(2, 3, 4)
        assert g.num_vertices == 24

    def test_cubic_default(self):
        assert grid_3d(3).num_vertices == 27

    def test_connected(self):
        assert is_connected(grid_3d(3))

    def test_interior_degree_6(self):
        g = grid_3d(3)
        assert g.degree((1, 1, 1)) == 6

    def test_manhattan_distance(self):
        g = grid_3d(4)
        dist, _ = dijkstra(g, (0, 0, 0))
        assert dist[(3, 3, 3)] == 9
