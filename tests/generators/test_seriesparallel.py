import pytest

from repro.generators import series_parallel_graph
from repro.graphs import is_connected
from repro.treedecomp import decomposition_from_elimination, min_degree_order
from repro.util.errors import GraphError


class TestSeriesParallel:
    def test_vertex_count(self):
        g = series_parallel_graph(40, seed=1)
        assert g.num_vertices == 40

    def test_connected(self):
        assert is_connected(series_parallel_graph(100, seed=2))

    def test_treewidth_at_most_two(self):
        # SP graphs have treewidth <= 2; min-degree is exact enough on
        # these to certify the upper bound.
        g = series_parallel_graph(80, seed=3)
        td = decomposition_from_elimination(g, min_degree_order(g))
        assert td.width <= 2

    def test_pure_series_is_path(self):
        g = series_parallel_graph(10, parallel_prob=0.0, seed=4)
        degrees = sorted(g.degree(v) for v in g.vertices())
        assert degrees == [1, 1] + [2] * 8

    def test_planarity(self):
        networkx = pytest.importorskip("networkx")
        from repro.graphs.converters import to_networkx

        g = series_parallel_graph(60, seed=5)
        ok, _ = networkx.check_planarity(to_networkx(g))
        assert ok

    def test_minimum_size(self):
        with pytest.raises(GraphError):
            series_parallel_graph(1)

    def test_invalid_prob(self):
        with pytest.raises(GraphError):
            series_parallel_graph(10, parallel_prob=2.0)

    def test_reproducible(self):
        assert series_parallel_graph(30, seed=6) == series_parallel_graph(30, seed=6)
