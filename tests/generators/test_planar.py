import pytest

from repro.generators import (
    outerplanar_graph,
    random_delaunay_graph,
    random_planar_graph,
)
from repro.graphs import is_connected
from repro.util.errors import GraphError


def is_planar_via_networkx(g):
    networkx = pytest.importorskip("networkx")
    from repro.graphs.converters import to_networkx

    ok, _ = networkx.check_planarity(to_networkx(g))
    return ok


class TestRandomPlanar:
    def test_connected(self):
        assert is_connected(random_planar_graph(80, seed=1))

    def test_planarity(self):
        assert is_planar_via_networkx(random_planar_graph(60, seed=2))

    def test_edge_budget(self):
        g = random_planar_graph(50, edge_keep_prob=1.0, seed=3)
        assert g.num_edges <= 3 * g.num_vertices - 6

    def test_sparsification_reduces_edges(self):
        dense = random_planar_graph(50, edge_keep_prob=1.0, seed=4)
        sparse = random_planar_graph(50, edge_keep_prob=0.4, seed=4)
        assert sparse.num_edges < dense.num_edges

    def test_minimum_size(self):
        with pytest.raises(GraphError):
            random_planar_graph(2)


class TestDelaunay:
    def test_structure(self):
        pytest.importorskip("scipy")
        g, pos = random_delaunay_graph(100, seed=5)
        assert g.num_vertices == 100
        assert len(pos) == 100
        assert is_connected(g)

    def test_planarity(self):
        pytest.importorskip("scipy")
        g, _ = random_delaunay_graph(70, seed=6)
        assert is_planar_via_networkx(g)

    def test_weights_are_euclidean(self):
        pytest.importorskip("scipy")
        import math

        g, pos = random_delaunay_graph(40, seed=7)
        for u, v, w in g.edges():
            expected = math.hypot(
                pos[u][0] - pos[v][0], pos[u][1] - pos[v][1]
            )
            assert w == pytest.approx(expected, abs=1e-6)

    def test_minimum_size(self):
        pytest.importorskip("scipy")
        with pytest.raises(GraphError):
            random_delaunay_graph(2)


class TestOuterplanar:
    def test_contains_cycle(self):
        g = outerplanar_graph(10, chord_prob=0.0)
        assert g.num_edges == 10  # just the cycle

    def test_chords_added(self):
        g = outerplanar_graph(20, chord_prob=1.0, seed=8)
        assert g.num_edges > 20

    def test_planarity(self):
        assert is_planar_via_networkx(outerplanar_graph(40, seed=9))

    def test_outerplanarity_via_k4_free_edge_bound(self):
        # Outerplanar graphs have at most 2n - 3 edges.
        g = outerplanar_graph(30, chord_prob=1.0, seed=10)
        assert g.num_edges <= 2 * 30 - 3

    def test_connected(self):
        assert is_connected(outerplanar_graph(25, seed=11))
