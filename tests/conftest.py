"""Shared fixtures: small graphs of every family the paper discusses."""

from __future__ import annotations

import random

import pytest

from repro.generators import (
    grid_2d,
    torus_2d,
    k_tree,
    outerplanar_graph,
    random_delaunay_graph,
    random_planar_graph,
    random_tree,
    road_network,
    series_parallel_graph,
)
from repro.graphs import Graph


@pytest.fixture
def triangle() -> Graph:
    return Graph([(0, 1, 1.0), (1, 2, 2.0), (0, 2, 2.5)])


@pytest.fixture
def small_grid() -> Graph:
    return grid_2d(5)


@pytest.fixture
def weighted_grid() -> Graph:
    return grid_2d(6, weight_range=(1.0, 5.0), seed=7)


@pytest.fixture
def small_tree() -> Graph:
    return random_tree(40, seed=11)


@pytest.fixture
def rng() -> random.Random:
    return random.Random(20060722)  # the paper's presentation date


def family_graphs(size: str = "small"):
    """All minor-free families as (name, graph) pairs.

    ``size`` picks rough vertex counts: 'small' ~60, 'medium' ~150.
    """
    n = {"small": 60, "medium": 150}[size]
    side = max(4, int(round(n**0.5)))
    return [
        ("tree", random_tree(n, seed=1)),
        ("outerplanar", outerplanar_graph(n, seed=2)),
        ("series_parallel", series_parallel_graph(n, seed=3)),
        ("k_tree", k_tree(n, 3, seed=4)[0]),
        ("grid", grid_2d(side)),
        ("weighted_grid", grid_2d(side, weight_range=(1.0, 8.0), seed=5)),
        ("planar", random_planar_graph(n, seed=6)),
        ("delaunay", random_delaunay_graph(n, seed=7)[0]),
        ("road", road_network(side, seed=8)),
        ("torus", torus_2d(max(3, side))),
    ]


def pair_sample(graph: Graph, count: int, seed: int = 0):
    """Deterministic sample of vertex pairs for stretch measurements."""
    rng = random.Random(seed)
    vertices = sorted(graph.vertices(), key=repr)
    pairs = []
    for _ in range(count):
        u = vertices[rng.randrange(len(vertices))]
        v = vertices[rng.randrange(len(vertices))]
        if u != v:
            pairs.append((u, v))
    return pairs
