"""CLI tests: every subcommand exercised through main()."""

import json

import pytest

from repro.cli import main
from repro.core.serialize import load_labeling


@pytest.fixture
def graph_file(tmp_path):
    path = tmp_path / "g.edges"
    rc = main(
        ["generate", "--family", "grid", "--n", "64", "--seed", "1", "--out", str(path)]
    )
    assert rc == 0
    return path


class TestGenerate:
    def test_writes_parseable_graph(self, graph_file):
        from repro.graphs.io import read_edge_list

        g = read_edge_list(graph_file)
        assert g.num_vertices == 64

    @pytest.mark.parametrize(
        "family", ["tree", "series-parallel", "ktree", "planar", "road"]
    )
    def test_families(self, tmp_path, family):
        out = tmp_path / f"{family}.edges"
        rc = main(
            ["generate", "--family", family, "--n", "40", "--out", str(out)]
        )
        assert rc == 0
        assert out.exists()

    def test_weights_flag(self, tmp_path):
        out = tmp_path / "w.edges"
        rc = main(
            [
                "generate", "--family", "tree", "--n", "30",
                "--weights", "2.0,5.0", "--out", str(out),
            ]
        )
        assert rc == 0
        from repro.graphs.io import read_edge_list

        g = read_edge_list(out)
        assert all(2.0 <= w <= 5.0 for _, _, w in g.edges())

    def test_unknown_family_fails_cleanly(self, tmp_path, capsys):
        rc = main(
            ["generate", "--family", "nope", "--n", "10",
             "--out", str(tmp_path / "x")]
        )
        assert rc == 2
        assert "unknown family" in capsys.readouterr().err


class TestDecompose:
    def test_prints_stats(self, graph_file, capsys):
        assert main(["decompose", str(graph_file)]) == 0
        out = capsys.readouterr().out
        assert "max_paths_per_node" in out

    def test_explicit_engine(self, graph_file, capsys):
        assert main(["decompose", str(graph_file), "--engine", "greedy"]) == 0


class TestOracle:
    def test_reports_stretch_within_bound(self, graph_file, capsys):
        rc = main(
            ["oracle", str(graph_file), "--epsilon", "0.3", "--queries", "30"]
        )
        assert rc == 0  # rc 1 would mean the guarantee was violated
        assert "max stretch" in capsys.readouterr().out


class TestLabelsAndQuery:
    def test_export_then_query(self, graph_file, tmp_path, capsys):
        labels = tmp_path / "labels.json"
        assert main(
            ["labels", str(graph_file), "--epsilon", "0.25", "--out", str(labels)]
        ) == 0
        payload = json.loads(labels.read_text())
        assert payload["format"] == "repro-distance-labels/1"
        assert main(["query", str(labels), "0", "63"]) == 0
        assert "d(0, 63)" in capsys.readouterr().out

    def test_query_unknown_vertex(self, graph_file, tmp_path, capsys):
        labels = tmp_path / "labels.json"
        main(["labels", str(graph_file), "--out", str(labels)])
        assert main(["query", str(labels), "0", "99999"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "99999" in err
        assert "Traceback" not in err

    def test_query_malformed_labels_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{ not json")
        assert main(["query", str(bad), "0", "1"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert len(err.strip().splitlines()) == 1

    def test_query_wrong_format_labels_file(self, tmp_path, capsys):
        bad = tmp_path / "other.json"
        bad.write_text(json.dumps({"format": "something-else/9", "labels": []}))
        assert main(["query", str(bad), "0", "1"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "something-else/9" in err

    def test_query_missing_labels_file(self, tmp_path, capsys):
        missing = tmp_path / "nope" / "labels.json"
        assert main(["query", str(missing), "0", "1"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err

    def test_labels_missing_graph_file(self, tmp_path, capsys):
        assert main(
            ["labels", str(tmp_path / "absent.edges"),
             "--out", str(tmp_path / "l.json")]
        ) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err

    def test_query_future_format_version(self, tmp_path, capsys):
        bad = tmp_path / "future.json"
        bad.write_text(
            json.dumps(
                {"format": "repro-distance-labels/99", "epsilon": 0.1,
                 "labels": []}
            )
        )
        assert main(["query", str(bad), "0", "1"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "unsupported labels format version 99" in err
        assert len(err.strip().splitlines()) == 1


class TestPack:
    """``repro pack``: codec conversion with exact-reproduction verify."""

    @pytest.fixture
    def labels_json(self, graph_file, tmp_path):
        path = tmp_path / "labels.json"
        assert main(
            ["labels", str(graph_file), "--epsilon", "0.25", "--out", str(path)]
        ) == 0
        return path

    def test_json_to_binary_and_back_is_byte_identical(
        self, labels_json, tmp_path, capsys
    ):
        packed = tmp_path / "labels.bin"
        back = tmp_path / "back.json"
        assert main(["pack", str(labels_json), str(packed), "--verify"]) == 0
        out = capsys.readouterr().out
        assert "verified" in out and "binary" in out
        from repro.core.binfmt import is_binary_labels

        assert is_binary_labels(packed.read_bytes())
        assert main(["pack", str(packed), str(back), "--verify"]) == 0
        # /1 -> /2 -> /1 reproduces the original file byte-for-byte.
        assert back.read_bytes() == labels_json.read_bytes()

    def test_queries_identical_across_codecs(
        self, labels_json, tmp_path, capsys
    ):
        packed = tmp_path / "labels.bin"
        assert main(["pack", str(labels_json), str(packed)]) == 0
        capsys.readouterr()
        assert main(["query", str(labels_json), "0", "63"]) == 0
        from_json = capsys.readouterr().out
        assert main(["query", str(packed), "0", "63"]) == 0
        assert capsys.readouterr().out == from_json

    def test_labels_codec_binary_matches_pack_output(
        self, graph_file, labels_json, tmp_path
    ):
        direct = tmp_path / "direct.bin"
        packed = tmp_path / "packed.bin"
        assert main(
            ["labels", str(graph_file), "--epsilon", "0.25",
             "--codec", "binary", "--out", str(direct)]
        ) == 0
        assert main(["pack", str(labels_json), str(packed)]) == 0
        assert direct.read_bytes() == packed.read_bytes()

    def test_explicit_to_same_codec_canonicalizes(self, labels_json, tmp_path):
        out = tmp_path / "canon.json"
        assert main(
            ["pack", str(labels_json), str(out), "--to", "json", "--verify"]
        ) == 0
        assert out.read_bytes() == labels_json.read_bytes()

    def test_missing_input_fails_cleanly(self, tmp_path, capsys):
        assert main(
            ["pack", str(tmp_path / "absent.json"), str(tmp_path / "out.bin")]
        ) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "Traceback" not in err

    def test_malformed_input_fails_cleanly(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{ not json")
        assert main(["pack", str(bad), str(tmp_path / "out.bin")]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert len(err.strip().splitlines()) == 1

    def test_truncated_binary_fails_cleanly(self, labels_json, tmp_path, capsys):
        packed = tmp_path / "labels.bin"
        assert main(["pack", str(labels_json), str(packed)]) == 0
        clipped = tmp_path / "clipped.bin"
        clipped.write_bytes(packed.read_bytes()[:-10])
        assert main(["query", str(clipped), "0", "63"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "Traceback" not in err


class TestQueryBatch:
    @pytest.fixture
    def labels_file(self, graph_file, tmp_path):
        labels = tmp_path / "labels.json"
        assert main(["labels", str(graph_file), "--out", str(labels)]) == 0
        return labels

    def test_pairs_file_amortizes_one_load(self, labels_file, tmp_path, capsys):
        pairs = tmp_path / "pairs.txt"
        pairs.write_text("# u v\n0 63\n5 40\n\n7 3\n")
        assert main(["query", str(labels_file), "--pairs-file", str(pairs)]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert len(out) == 3
        assert out[0].startswith("0 63 ")
        # Each line's estimate matches a single-pair query of the same pair.
        from repro.core.serialize import load_labeling

        remote = load_labeling(labels_file)
        for line, (u, v) in zip(out, [(0, 63), (5, 40), (7, 3)]):
            assert line == f"{u} {v} {remote.estimate(u, v):.6g}"

    def test_pairs_file_stdin(self, labels_file, capsys, monkeypatch):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO("0 63\n1 2\n"))
        assert main(["query", str(labels_file), "--pairs-file", "-"]) == 0
        assert len(capsys.readouterr().out.strip().splitlines()) == 2

    def test_positional_and_pairs_file_conflict(self, labels_file, tmp_path,
                                                capsys):
        pairs = tmp_path / "pairs.txt"
        pairs.write_text("0 1\n")
        rc = main(
            ["query", str(labels_file), "0", "1", "--pairs-file", str(pairs)]
        )
        assert rc == 2
        assert "not both" in capsys.readouterr().err

    def test_missing_vertices_without_pairs_file(self, labels_file, capsys):
        assert main(["query", str(labels_file)]) == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_bad_pairs_file(self, labels_file, tmp_path, capsys):
        pairs = tmp_path / "pairs.txt"
        pairs.write_text("0 1 2\n")
        assert main(
            ["query", str(labels_file), "--pairs-file", str(pairs)]
        ) == 2
        assert capsys.readouterr().err.startswith("error:")


class TestJobs:
    def test_jobs_matches_serial_and_is_reproducible(
        self, graph_file, tmp_path, capsys
    ):
        serial = tmp_path / "serial.json"
        par_a = tmp_path / "par_a.json"
        par_b = tmp_path / "par_b.json"
        base = ["labels", str(graph_file), "--epsilon", "0.25", "--seed", "7"]
        assert main(base + ["--out", str(serial)]) == 0
        assert main(base + ["--jobs", "4", "--out", str(par_a)]) == 0
        assert main(base + ["--jobs", "4", "--out", str(par_b)]) == 0
        capsys.readouterr()
        # Two parallel runs agree with each other AND with serial,
        # byte for byte.
        assert par_a.read_bytes() == par_b.read_bytes()
        assert par_a.read_bytes() == serial.read_bytes()

    def test_jobs_flag_on_oracle_and_stats(self, graph_file, capsys):
        for cmd in ("oracle", "stats"):
            rc = main([cmd, str(graph_file), "--queries", "5", "--jobs", "2"])
            assert rc == 0
            capsys.readouterr()


class TestSmallworld:
    def test_comparison_table(self, graph_file, capsys):
        rc = main(["smallworld", str(graph_file), "--pairs", "20"])
        assert rc == 0
        out = capsys.readouterr().out
        for name in ("path-separator", "kleinberg", "uniform", "none"):
            assert name in out

    def test_pair_sampling_excludes_self_pairs(self):
        import random

        from repro.cli import _sample_distinct_pairs

        # Two vertices force a 50% self-pair rate under naive sampling;
        # the resampling loop must return only u != v pairs.
        pairs = _sample_distinct_pairs([0, 1], 100, random.Random(0))
        assert len(pairs) == 100
        assert all(u != v for u, v in pairs)


class TestServeAndLoadgen:
    """End-to-end through the CLI entry points, in one process."""

    def test_serve_loadgen_round_trip(self, graph_file, tmp_path, capsys):
        import asyncio
        import json as json_mod
        import threading

        labels = tmp_path / "labels.json"
        assert main(["labels", str(graph_file), "--out", str(labels)]) == 0

        from repro.serve import OracleServer, ShardedLabelStore, StoreCatalog

        catalog = StoreCatalog()
        catalog.add(ShardedLabelStore.load(labels))
        server = OracleServer(catalog, port=0, cache_size=64)
        started = threading.Event()
        loop_holder = {}

        def serve_thread():
            async def body():
                await server.start()
                loop_holder["loop"] = asyncio.get_running_loop()
                started.set()
                await server.serve_until_shutdown()

            asyncio.run(body())

        thread = threading.Thread(target=serve_thread)
        thread.start()
        try:
            assert started.wait(10)
            bench = tmp_path / "BENCH_serve.json"
            rc = main(
                [
                    "loadgen",
                    "--port", str(server.port),
                    "--labels", str(labels),
                    "--pairs", "60",
                    "--concurrency", "4",
                    "--verify",
                    "--bench-out", str(bench),
                ]
            )
            captured = capsys.readouterr()
            assert rc == 0, captured.err
            assert "qps" in captured.out
            payload = json_mod.loads(bench.read_text())
            assert payload["format"] == "repro-bench/1"
            assert payload["meta"]["qps"] > 0
            assert payload["meta"]["mismatches"] == 0
            assert payload["meta"]["latency_ms"]["p99"] >= 0
        finally:
            loop_holder["loop"].call_soon_threadsafe(server.request_shutdown)
            thread.join(timeout=10)
        assert not thread.is_alive()

    def test_serve_and_verify_from_binary_labels(
        self, graph_file, tmp_path, capsys
    ):
        # The whole serve pipeline on a packed /2 file: the catalog
        # sniffs the codec and mmaps, and loadgen's --verify compares
        # every served byte against the same binary file loaded offline.
        import asyncio
        import threading

        labels_json = tmp_path / "labels.json"
        labels_bin = tmp_path / "labels.bin"
        assert main(["labels", str(graph_file), "--out", str(labels_json)]) == 0
        assert main(["pack", str(labels_json), str(labels_bin)]) == 0

        from repro.serve import MappedLabelStore, OracleServer, ShardedLabelStore, StoreCatalog

        catalog = StoreCatalog()
        store = catalog.add(ShardedLabelStore.load(labels_bin))
        assert isinstance(store, MappedLabelStore)
        server = OracleServer(catalog, port=0, cache_size=64)
        started = threading.Event()
        loop_holder = {}

        def serve_thread():
            async def body():
                await server.start()
                loop_holder["loop"] = asyncio.get_running_loop()
                started.set()
                await server.serve_until_shutdown()

            asyncio.run(body())

        thread = threading.Thread(target=serve_thread)
        thread.start()
        try:
            assert started.wait(10)
            rc = main(
                [
                    "loadgen",
                    "--port", str(server.port),
                    "--labels", str(labels_bin),
                    "--pairs", "40",
                    "--concurrency", "4",
                    "--verify",
                ]
            )
            captured = capsys.readouterr()
            assert rc == 0, captured.err
            assert "qps" in captured.out
        finally:
            loop_holder["loop"].call_soon_threadsafe(server.request_shutdown)
            thread.join(timeout=10)
        assert not thread.is_alive()

    def test_loadgen_without_pair_source(self, capsys):
        assert main(["loadgen", "--port", "1"]) == 2
        assert "need --labels" in capsys.readouterr().err

    def test_loadgen_verify_needs_labels(self, tmp_path, capsys):
        pairs = tmp_path / "pairs.txt"
        pairs.write_text("0 1\n")
        rc = main(
            ["loadgen", "--port", "1", "--pairs-file", str(pairs), "--verify"]
        )
        assert rc == 2
        assert "--verify needs --labels" in capsys.readouterr().err

    def test_loadgen_connection_refused(self, graph_file, tmp_path, capsys):
        labels = tmp_path / "labels.json"
        assert main(["labels", str(graph_file), "--out", str(labels)]) == 0
        # Port 1 is never listening: a zeros-and-errors report with the
        # refusal noted on stderr, exit 1 — never a traceback.
        rc = main(
            ["loadgen", "--port", "1", "--labels", str(labels), "--pairs", "4",
             "--attempt-timeout", "0.5"]
        )
        assert rc == 1
        captured = capsys.readouterr()
        assert "Traceback" not in captured.err
        assert "note:" in captured.err  # the root cause survives as a sample
        out = captured.out
        assert "queries_ok" in out and "errors" in out

    def test_serve_refuses_future_format(self, tmp_path, capsys):
        bad = tmp_path / "future.json"
        bad.write_text(
            '{"format": "repro-distance-labels/99", "epsilon": 0.1, "labels": []}'
        )
        assert main(["serve", "--labels", str(bad), "--port", "0"]) == 2
        err = capsys.readouterr().err
        assert "unsupported labels format version 99" in err

    def test_serve_refuses_bad_fault_plan(self, graph_file, tmp_path, capsys):
        labels = tmp_path / "labels.json"
        assert main(["labels", str(graph_file), "--out", str(labels)]) == 0
        plan = tmp_path / "plan.json"
        plan.write_text('{"format": "repro-fault-plan/1", "rules": '
                        '[{"kind": "meteor", "rate": 0.1}]}')
        rc = main(["serve", "--labels", str(labels), "--port", "0",
                   "--fault-plan", str(plan)])
        assert rc == 2
        assert "unknown fault kind" in capsys.readouterr().err


class TestChaos:
    def test_chaos_absorbs_default_plan(self, graph_file, tmp_path, capsys):
        import json as json_mod

        labels = tmp_path / "labels.json"
        assert main(["labels", str(graph_file), "--out", str(labels)]) == 0
        bench = tmp_path / "BENCH_chaos.json"
        rc = main(
            ["chaos", "--labels", str(labels), "--pairs", "40",
             "--concurrency", "4", "--retries", "6",
             "--attempt-timeout", "1.0", "--bench-out", str(bench)]
        )
        captured = capsys.readouterr()
        assert rc == 0, captured.err
        assert "fault injections" in captured.out
        payload = json_mod.loads(bench.read_text())
        assert payload["format"] == "repro-bench/1"
        assert payload["name"] == "chaos"
        assert payload["meta"]["mismatches"] == 0
        assert payload["meta"]["queries_ok"] == 40
        assert payload["meta"]["fault_plan"]["format"] == "repro-fault-plan/1"
        # The default plan delays every reply and drops ~10%: the run
        # must actually have exercised the fault path, not dodged it.
        assert payload["meta"]["faults_injected"].get("delay", 0) > 0

    def test_chaos_rejects_bad_plan(self, graph_file, tmp_path, capsys):
        labels = tmp_path / "labels.json"
        assert main(["labels", str(graph_file), "--out", str(labels)]) == 0
        plan = tmp_path / "plan.json"
        plan.write_text('{"format": "repro-fault-plan/2", "rules": []}')
        rc = main(["chaos", "--labels", str(labels),
                   "--fault-plan", str(plan)])
        assert rc == 2
        assert "unsupported fault-plan format" in capsys.readouterr().err


class TestQueryRemote:
    @staticmethod
    def _serve(labels_path):
        """Start an OracleServer on a background thread; return
        (server, stop callable)."""
        import asyncio
        import threading

        from repro.serve import OracleServer, ShardedLabelStore, StoreCatalog

        catalog = StoreCatalog()
        catalog.add(ShardedLabelStore.load(labels_path))
        server = OracleServer(catalog, port=0)
        started = threading.Event()
        loop_holder = {}

        def body():
            async def run():
                await server.start()
                loop_holder["loop"] = asyncio.get_running_loop()
                started.set()
                await server.serve_until_shutdown()

            asyncio.run(run())

        thread = threading.Thread(target=body)
        thread.start()
        assert started.wait(10)

        def stop():
            loop_holder["loop"].call_soon_threadsafe(server.request_shutdown)
            thread.join(timeout=10)

        return server, stop

    def test_remote_matches_offline(self, graph_file, tmp_path, capsys):
        labels = tmp_path / "labels.json"
        assert main(["labels", str(graph_file), "--out", str(labels)]) == 0
        remote = load_labeling(labels)
        u, v = sorted(remote.vertices())[:2]
        server, stop = self._serve(labels)
        try:
            rc = main(["query", "--remote", f"127.0.0.1:{server.port}",
                       str(u), str(v)])
            captured = capsys.readouterr()
            assert rc == 0, captured.err
            assert f"d({u}, {v}) <= {remote.estimate(u, v):.6g}" in captured.out
        finally:
            stop()

    def test_remote_pairs_file(self, graph_file, tmp_path, capsys):
        labels = tmp_path / "labels.json"
        assert main(["labels", str(graph_file), "--out", str(labels)]) == 0
        remote = load_labeling(labels)
        vs = sorted(remote.vertices())
        pairs = tmp_path / "pairs.txt"
        pairs.write_text(f"{vs[0]} {vs[1]}\n{vs[2]} {vs[3]}\n")
        capsys.readouterr()  # drain the `labels` subcommand's output
        server, stop = self._serve(labels)
        try:
            rc = main(["query", "--remote", f"127.0.0.1:{server.port}",
                       "--pairs-file", str(pairs)])
            captured = capsys.readouterr()
            assert rc == 0, captured.err
            lines = captured.out.strip().splitlines()
            assert lines == [
                f"{u} {v} {remote.estimate(u, v):.6g}"
                for u, v in [(vs[0], vs[1]), (vs[2], vs[3])]
            ]
        finally:
            stop()

    def test_remote_unknown_vertex_is_error(self, graph_file, tmp_path, capsys):
        labels = tmp_path / "labels.json"
        assert main(["labels", str(graph_file), "--out", str(labels)]) == 0
        server, stop = self._serve(labels)
        try:
            rc = main(["query", "--remote", f"127.0.0.1:{server.port}",
                       "0", "no-such-vertex"])
            assert rc == 2
            assert "unknown_vertex" in capsys.readouterr().err
        finally:
            stop()

    def test_query_needs_labels_or_remote(self, capsys):
        assert main(["query"]) == 2
        assert "need a labels file" in capsys.readouterr().err


class TestDecomposeDot:
    def test_dot_export(self, graph_file, tmp_path, capsys):
        dot = tmp_path / "tree.dot"
        rc = main(["decompose", str(graph_file), "--dot", str(dot)])
        assert rc == 0
        text = dot.read_text()
        assert text.startswith("digraph")


class TestStats:
    def test_per_phase_and_per_level_breakdown(self, graph_file, capsys):
        rc = main(["stats", str(graph_file), "--queries", "10"])
        assert rc == 0
        out = capsys.readouterr().out
        # Per-phase rows for every pipeline stage.
        for phase in ("oracle.build", "decomposition.build", "labeling.build",
                      "oracle.query_eval"):
            assert phase in out
        assert "per-level decomposition breakdown" in out
        # At least 8 distinct named metrics in the catalog.
        names = {
            line.split()[0]
            for line in out.splitlines()
            if line.strip() and "." in line.split()[0]
        }
        metric_names = {n for n in names if not n.endswith(":")}
        assert len(metric_names) >= 8, sorted(metric_names)

    def test_metrics_out_json_matches(self, graph_file, tmp_path, capsys):
        out_path = tmp_path / "m.json"
        rc = main(
            ["stats", str(graph_file), "--queries", "10",
             "--metrics-out", str(out_path)]
        )
        assert rc == 0
        payload = json.loads(out_path.read_text())
        assert payload["format"] == "repro-metrics/1"
        assert payload["n"] == 64
        counters = payload["metrics"]["counters"]
        gauges = payload["metrics"]["gauges"]
        assert counters["oracle.query.count"] == 10
        assert gauges["labeling.words"] > 0
        # Per-level JSON agrees with the decomposition's own accounting.
        level0 = [lv for lv in payload["levels"] if lv["level"] == 0][0]
        assert level0["nodes"] == 1
        assert counters["decomposition.nodes"] == sum(
            lv["nodes"] for lv in payload["levels"]
        )
        assert payload["metrics"]["histograms"]["oracle.query.stretch"]["count"] == 10

    def test_stats_respects_stretch_bound(self, graph_file):
        assert main(["stats", str(graph_file), "--queries", "5"]) == 0


class TestObservabilityFlags:
    def test_trace_logs_spans_to_stderr(self, graph_file, capsys):
        rc = main(["oracle", str(graph_file), "--queries", "5", "--trace"])
        assert rc == 0
        err = capsys.readouterr().err
        assert "[trace] oracle.build" in err
        assert "[trace]   decomposition.build" in err

    def test_metrics_out_on_other_commands(self, graph_file, tmp_path):
        out_path = tmp_path / "m.json"
        rc = main(
            ["decompose", str(graph_file), "--metrics-out", str(out_path)]
        )
        assert rc == 0
        payload = json.loads(out_path.read_text())
        assert payload["command"] == "decompose"
        assert payload["metrics"]["counters"]["decomposition.nodes"] > 0


class TestSeedDeterminism:
    def test_same_seed_same_output(self, graph_file, capsys):
        main(["decompose", str(graph_file), "--engine", "greedy", "--seed", "7"])
        first = capsys.readouterr().out
        main(["decompose", str(graph_file), "--engine", "greedy", "--seed", "7"])
        second = capsys.readouterr().out
        assert first == second

    def test_seed_reaches_engine(self, graph_file, capsys):
        # Different seeds may legitimately produce identical stats on a
        # small grid, but the flag must parse and run everywhere.
        for cmd in ("decompose", "stats"):
            rc = main([cmd, str(graph_file), "--engine", "greedy", "--seed", "3"])
            assert rc == 0
            capsys.readouterr()


class TestGenerateRandomFamilies:
    def test_gnp_with_default_p(self, tmp_path):
        out = tmp_path / "gnp.edges"
        rc = main(
            ["generate", "--family", "gnp", "--n", "50", "--seed", "3",
             "--out", str(out)]
        )
        assert rc == 0
        from repro.graphs import is_connected
        from repro.graphs.io import read_edge_list

        g = read_edge_list(out)
        assert g.num_vertices == 50 and is_connected(g)

    def test_gnp_with_explicit_p(self, tmp_path):
        out = tmp_path / "gnp.edges"
        rc = main(
            ["generate", "--family", "gnp", "--n", "30", "--p", "0.5",
             "--seed", "3", "--out", str(out)]
        )
        assert rc == 0

    def test_preferential_attachment_with_m(self, tmp_path):
        out = tmp_path / "pa.edges"
        rc = main(
            ["generate", "--family", "preferential-attachment", "--n", "40",
             "--m", "2", "--seed", "3", "--out", str(out)]
        )
        assert rc == 0
        from repro.graphs.io import read_edge_list

        g = read_edge_list(out)
        assert g.num_edges == 2 + (40 - 2 - 1) * 2


@pytest.fixture
def weighted_graph_file(tmp_path):
    path = tmp_path / "wg.edges"
    rc = main(
        ["generate", "--family", "grid", "--n", "36", "--seed", "2",
         "--weights", "1,5", "--out", str(path)]
    )
    assert rc == 0
    return path


class TestUpdate:
    """``repro update``: offline journaled incremental relabeling."""

    def build_labels(self, graph_file, tmp_path):
        labels = tmp_path / "labels.json"
        rc = main(
            ["labels", str(graph_file), "--engine", "greedy", "--seed", "0",
             "--epsilon", "0.25", "--out", str(labels)]
        )
        assert rc == 0
        return labels

    def an_edge(self, graph_file, index=0):
        from repro.graphs.io import read_edge_list

        edges = sorted(read_edge_list(graph_file).edges(), key=repr)
        u, v, _w = edges[index]
        return str(u), str(v)

    def test_update_verify_and_out(self, weighted_graph_file, tmp_path, capsys):
        labels = self.build_labels(weighted_graph_file, tmp_path)
        journal = tmp_path / "journal.jsonl"
        updated = tmp_path / "updated.json"
        u, v = self.an_edge(weighted_graph_file)
        rc = main(
            ["update", str(weighted_graph_file), "--labels", str(labels),
             "--journal", str(journal), "--engine", "greedy", "--seed", "0",
             "--edge", u, v, "2.875", "--verify", "--out", str(updated)]
        )
        captured = capsys.readouterr()
        assert rc == 0, captured.err
        assert "epoch 1" in captured.out
        assert "byte-identical" in captured.out
        assert load_labeling(updated).num_labels == 36

        from repro.dynamic import read_journal

        read = read_journal(journal)
        assert read.last_epoch == 1 and not read.warnings

    def test_second_run_replays_the_journal(
        self, weighted_graph_file, tmp_path, capsys
    ):
        labels = self.build_labels(weighted_graph_file, tmp_path)
        journal = tmp_path / "journal.jsonl"
        u1, v1 = self.an_edge(weighted_graph_file, 0)
        u2, v2 = self.an_edge(weighted_graph_file, 5)
        assert main(
            ["update", str(weighted_graph_file), "--labels", str(labels),
             "--journal", str(journal), "--engine", "greedy", "--seed", "0",
             "--edge", u1, v1, "3.125"]
        ) == 0
        capsys.readouterr()
        rc = main(
            ["update", str(weighted_graph_file), "--labels", str(labels),
             "--journal", str(journal), "--engine", "greedy", "--seed", "0",
             "--edge", u2, v2, "1.625", "--verify"]
        )
        captured = capsys.readouterr()
        assert rc == 0, captured.err
        assert "replayed 1 journaled deltas" in captured.out
        assert "epoch 2" in captured.out

    def test_missing_edge_is_a_clean_error(
        self, weighted_graph_file, tmp_path, capsys
    ):
        labels = self.build_labels(weighted_graph_file, tmp_path)
        rc = main(
            ["update", str(weighted_graph_file), "--labels", str(labels),
             "--journal", str(tmp_path / "j.jsonl"), "--engine", "greedy",
             "--seed", "0", "--edge", "0", "35", "2.0"]
        )
        assert rc == 2
        assert "full offline rebuild" in capsys.readouterr().err


def _serve_in_thread(labels):
    """Start an OracleServer on a daemon thread; returns (server, stop)."""
    import asyncio
    import threading

    from repro.serve import OracleServer, ShardedLabelStore, StoreCatalog

    catalog = StoreCatalog()
    catalog.add(ShardedLabelStore.load(labels))
    server = OracleServer(catalog, port=0, cache_size=64)
    started = threading.Event()
    loop_holder = {}

    def serve_thread():
        async def body():
            await server.start()
            loop_holder["loop"] = asyncio.get_running_loop()
            started.set()
            await server.serve_until_shutdown()

        asyncio.run(body())

    thread = threading.Thread(target=serve_thread, daemon=True)
    thread.start()
    assert started.wait(10)

    def stop():
        loop_holder["loop"].call_soon_threadsafe(server.request_shutdown)
        thread.join(timeout=10)
        assert not thread.is_alive()

    return server, stop


class TestLoadgenUpdates:
    def test_updates_under_live_load(self, weighted_graph_file, tmp_path, capsys):
        labels = tmp_path / "labels.json"
        assert main(
            ["labels", str(weighted_graph_file), "--engine", "greedy",
             "--seed", "0", "--epsilon", "0.25", "--out", str(labels)]
        ) == 0
        server, stop = _serve_in_thread(labels)
        journal = tmp_path / "journal.jsonl"
        bench = tmp_path / "BENCH_dynamic.json"
        try:
            rc = main(
                ["loadgen", "--port", str(server.port),
                 "--labels", str(labels),
                 "--updates", "3", "--update-graph", str(weighted_graph_file),
                 "--engine", "greedy", "--epsilon", "0.25", "--seed", "0",
                 "--queries-per-update", "10", "--verify-queries", "40",
                 "--concurrency", "4",
                 "--update-journal", str(journal),
                 "--bench-out", str(bench)]
            )
        finally:
            stop()
        captured = capsys.readouterr()
        assert rc == 0, captured.err
        assert "updates_applied" in captured.out
        payload = json.loads(bench.read_text())
        assert payload["meta"]["updates"]["applied"] == 3
        assert payload["meta"]["updates"]["rebuild_identical"] is True
        assert payload["meta"]["mismatches"] == 0

        from repro.dynamic import read_journal

        assert read_journal(journal).last_epoch == 3

    def test_updates_need_a_graph(self, capsys):
        rc = main(["loadgen", "--updates", "2"])
        assert rc == 2
        assert "--update-graph" in capsys.readouterr().err


class TestTraceRecordReplay:
    def test_record_then_replay(self, weighted_graph_file, tmp_path, capsys):
        labels = tmp_path / "labels.json"
        assert main(
            ["labels", str(weighted_graph_file), "--out", str(labels)]
        ) == 0
        server, stop = _serve_in_thread(labels)
        trace = tmp_path / "trace.jsonl"
        try:
            rc = main(
                ["loadgen", "--port", str(server.port),
                 "--labels", str(labels), "--pairs", "30",
                 "--verify", "--record-trace", str(trace)]
            )
            assert rc == 0
            capsys.readouterr()
            rc = main(
                ["loadgen", "--port", str(server.port),
                 "--labels", str(labels), "--replay", str(trace),
                 "--verify"]
            )
        finally:
            stop()
        captured = capsys.readouterr()
        assert rc == 0, captured.err

        from repro.serve.querytrace import read_trace

        assert len(read_trace(trace)) == 30

    def test_replay_rejects_a_bad_trace(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"format": "nope/1", "count": 0}\n')
        rc = main(["loadgen", "--replay", str(bad)])
        assert rc == 2
        assert "repro-querytrace/1" in capsys.readouterr().err
