"""CLI tests: every subcommand exercised through main()."""

import json

import pytest

from repro.cli import main


@pytest.fixture
def graph_file(tmp_path):
    path = tmp_path / "g.edges"
    rc = main(
        ["generate", "--family", "grid", "--n", "64", "--seed", "1", "--out", str(path)]
    )
    assert rc == 0
    return path


class TestGenerate:
    def test_writes_parseable_graph(self, graph_file):
        from repro.graphs.io import read_edge_list

        g = read_edge_list(graph_file)
        assert g.num_vertices == 64

    @pytest.mark.parametrize(
        "family", ["tree", "series-parallel", "ktree", "planar", "road"]
    )
    def test_families(self, tmp_path, family):
        out = tmp_path / f"{family}.edges"
        rc = main(
            ["generate", "--family", family, "--n", "40", "--out", str(out)]
        )
        assert rc == 0
        assert out.exists()

    def test_weights_flag(self, tmp_path):
        out = tmp_path / "w.edges"
        rc = main(
            [
                "generate", "--family", "tree", "--n", "30",
                "--weights", "2.0,5.0", "--out", str(out),
            ]
        )
        assert rc == 0
        from repro.graphs.io import read_edge_list

        g = read_edge_list(out)
        assert all(2.0 <= w <= 5.0 for _, _, w in g.edges())

    def test_unknown_family_fails_cleanly(self, tmp_path, capsys):
        rc = main(
            ["generate", "--family", "nope", "--n", "10",
             "--out", str(tmp_path / "x")]
        )
        assert rc == 2
        assert "unknown family" in capsys.readouterr().err


class TestDecompose:
    def test_prints_stats(self, graph_file, capsys):
        assert main(["decompose", str(graph_file)]) == 0
        out = capsys.readouterr().out
        assert "max_paths_per_node" in out

    def test_explicit_engine(self, graph_file, capsys):
        assert main(["decompose", str(graph_file), "--engine", "greedy"]) == 0


class TestOracle:
    def test_reports_stretch_within_bound(self, graph_file, capsys):
        rc = main(
            ["oracle", str(graph_file), "--epsilon", "0.3", "--queries", "30"]
        )
        assert rc == 0  # rc 1 would mean the guarantee was violated
        assert "max stretch" in capsys.readouterr().out


class TestLabelsAndQuery:
    def test_export_then_query(self, graph_file, tmp_path, capsys):
        labels = tmp_path / "labels.json"
        assert main(
            ["labels", str(graph_file), "--epsilon", "0.25", "--out", str(labels)]
        ) == 0
        payload = json.loads(labels.read_text())
        assert payload["format"] == "repro-distance-labels/1"
        assert main(["query", str(labels), "0", "63"]) == 0
        assert "d(0, 63)" in capsys.readouterr().out

    def test_query_unknown_vertex(self, graph_file, tmp_path, capsys):
        labels = tmp_path / "labels.json"
        main(["labels", str(graph_file), "--out", str(labels)])
        assert main(["query", str(labels), "0", "99999"]) == 1


class TestSmallworld:
    def test_comparison_table(self, graph_file, capsys):
        rc = main(["smallworld", str(graph_file), "--pairs", "20"])
        assert rc == 0
        out = capsys.readouterr().out
        for name in ("path-separator", "kleinberg", "uniform", "none"):
            assert name in out


class TestDecomposeDot:
    def test_dot_export(self, graph_file, tmp_path, capsys):
        dot = tmp_path / "tree.dot"
        rc = main(["decompose", str(graph_file), "--dot", str(dot)])
        assert rc == 0
        text = dot.read_text()
        assert text.startswith("digraph")
