"""Property-based tests for the compact routing scheme."""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import CompactRoutingScheme
from repro.generators import grid_2d, random_planar_graph, random_tree
from repro.graphs import dijkstra

SLOW = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

graph_strategy = st.one_of(
    st.builds(
        lambda n, seed: random_tree(n, weight_range=(0.5, 5.0), seed=seed),
        n=st.integers(2, 40),
        seed=st.integers(0, 10**6),
    ),
    st.builds(
        random_planar_graph,
        n=st.integers(3, 40),
        seed=st.integers(0, 10**6),
    ),
    st.builds(
        lambda r, seed: grid_2d(r, weight_range=(1.0, 4.0), seed=seed),
        r=st.integers(2, 6),
        seed=st.integers(0, 10**6),
    ),
)


class TestRoutingProperties:
    @SLOW
    @given(graph=graph_strategy, pair_seed=st.integers(0, 10**6))
    def test_delivery_and_stretch_bound(self, graph, pair_seed):
        scheme = CompactRoutingScheme.build(graph)
        rng = random.Random(pair_seed)
        vertices = sorted(graph.vertices(), key=repr)
        for _ in range(10):
            u = vertices[rng.randrange(len(vertices))]
            v = vertices[rng.randrange(len(vertices))]
            hops = scheme.route(u, v)
            assert hops[0] == u and hops[-1] == v
            for a, b in zip(hops, hops[1:]):
                assert graph.has_edge(a, b)
            if u != v:
                true = dijkstra(graph, u)[0][v]
                assert scheme.route_cost(hops) <= 3 * true + 1e-6

    @SLOW
    @given(graph=graph_strategy)
    def test_labels_present_for_every_vertex(self, graph):
        scheme = CompactRoutingScheme.build(graph)
        for v in graph.vertices():
            assert scheme.labels[v].entries, v
