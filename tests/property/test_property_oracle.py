"""Property-based tests: the oracle stretch invariant (Theorem 2)."""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import PathSeparatorOracle
from repro.generators import grid_2d, random_planar_graph, random_tree
from repro.graphs import dijkstra

SLOW = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


graph_strategy = st.one_of(
    st.builds(
        lambda n, seed: random_tree(n, weight_range=(0.5, 9.0), seed=seed),
        n=st.integers(2, 50),
        seed=st.integers(0, 10**6),
    ),
    st.builds(
        random_planar_graph,
        n=st.integers(3, 40),
        seed=st.integers(0, 10**6),
    ),
    st.builds(
        lambda r, seed: grid_2d(r, weight_range=(1.0, 5.0), seed=seed),
        r=st.integers(2, 7),
        seed=st.integers(0, 10**6),
    ),
)


class TestOracleStretchInvariant:
    @SLOW
    @given(
        graph=graph_strategy,
        epsilon=st.sampled_from([1.0, 0.5, 0.2]),
        pair_seed=st.integers(0, 10**6),
    )
    def test_estimate_within_one_plus_epsilon(self, graph, epsilon, pair_seed):
        oracle = PathSeparatorOracle.build(graph, epsilon=epsilon)
        rng = random.Random(pair_seed)
        vertices = sorted(graph.vertices(), key=repr)
        for _ in range(15):
            u = vertices[rng.randrange(len(vertices))]
            v = vertices[rng.randrange(len(vertices))]
            true = dijkstra(graph, u)[0][v]
            est = oracle.query(u, v)
            if u == v:
                assert est == 0.0
            else:
                assert true - 1e-9 <= est <= (1 + epsilon) * true + 1e-9

    @SLOW
    @given(graph=graph_strategy)
    def test_estimates_symmetric(self, graph):
        oracle = PathSeparatorOracle.build(graph, epsilon=0.5)
        vertices = sorted(graph.vertices(), key=repr)
        rng = random.Random(0)
        for _ in range(10):
            u = vertices[rng.randrange(len(vertices))]
            v = vertices[rng.randrange(len(vertices))]
            assert abs(oracle.query(u, v) - oracle.query(v, u)) <= 1e-9
