"""Property-based tests: invalidation soundness for incremental updates.

The load-bearing claim behind ``repro.dynamic``: for any edge reweight,
the affected-vertex set computed by :func:`affected_vertices` (the
union of the residuals of the affected units) is a **superset** of the
vertices whose labels actually differ after a full rebuild on the same
tree.  If that ever failed, an incremental update would silently leave
a stale label behind.  Checked across all five separator engines.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import pytest

from repro.core import build_labeling
from repro.dynamic import (
    EdgeUpdate,
    affected_units,
    affected_units_bruteforce,
    affected_vertices,
    incremental_relabel,
)

from tests.dynamic.conftest import CASES, EPSILON, fresh_case

SLOW = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

update_strategy = st.tuples(
    st.integers(0, 10**6),           # edge index (mod the edge count)
    st.floats(0.25, 4.0),            # weight multiplier
)


def pick_update(graph, index, factor):
    edges = sorted(graph.edges(), key=repr)
    u, v, w = edges[index % len(edges)]
    new_w = round(float(w) * factor, 9)
    if new_w <= 0 or new_w == float(w):
        new_w = float(w) + 0.375
    return EdgeUpdate(u, v, new_w)


@pytest.mark.parametrize("case", sorted(CASES))
class TestInvalidationSoundness:
    @SLOW
    @given(update=update_strategy)
    def test_affected_set_covers_every_changed_label(self, case, update):
        index, factor = update
        graph, tree, labeling = fresh_case(case)
        before = {
            v: {key: list(entries) for key, entries in label.entries.items()}
            for v, label in labeling.labels.items()
        }
        edge = pick_update(graph, index, factor)
        predicted = affected_vertices(tree, edge.u, edge.v)
        graph.add_edge(edge.u, edge.v, edge.weight)
        for key in tree.all_path_keys():
            tree.recompute_prefix(key)
        rebuilt = build_labeling(graph, tree, epsilon=EPSILON)
        changed = {
            v
            for v, label in rebuilt.labels.items()
            if {key: list(e) for key, e in label.entries.items()} != before[v]
        }
        assert changed <= predicted

    @SLOW
    @given(update=update_strategy)
    def test_walk_matches_bruteforce(self, case, update):
        index, factor = update
        graph, tree, _ = fresh_case(case)
        edge = pick_update(graph, index, factor)
        assert affected_units(tree, edge.u, edge.v) == (
            affected_units_bruteforce(tree, edge.u, edge.v)
        )

    @SLOW
    @given(update=update_strategy, followups=st.integers(1, 3))
    def test_repeated_incremental_updates_stay_exact(
        self, case, update, followups
    ):
        # Byte-identity is transitive: after several incremental
        # updates the labels still match a from-scratch rebuild.
        index, factor = update
        graph, tree, labeling = fresh_case(case)
        for step in range(followups):
            edge = pick_update(graph, index + step, factor)
            if float(graph.weight(edge.u, edge.v)) == edge.weight:
                edge = EdgeUpdate(edge.u, edge.v, edge.weight + 0.125)
            incremental_relabel(labeling, edge)
        rebuilt = build_labeling(graph, tree, epsilon=EPSILON)
        for v, label in rebuilt.labels.items():
            assert labeling.labels[v].entries == label.entries
