"""Property-based tests for portal selection and portal-pair queries."""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import epsilon_cover_portals, min_portal_pair

INF = float("inf")


@st.composite
def path_with_distances(draw):
    """A weighted path (prefix) plus a 1-Lipschitz distance function,
    the shape real d_J(v, .) restrictions to a shortest path have."""
    n = draw(st.integers(2, 40))
    gaps = draw(
        st.lists(st.floats(0.1, 5.0), min_size=n - 1, max_size=n - 1)
    )
    prefix = [0.0]
    for g in gaps:
        prefix.append(prefix[-1] + g)
    d0 = draw(st.floats(0.1, 20.0))
    dist = {0: d0}
    for i in range(1, n):
        gap = prefix[i] - prefix[i - 1]
        delta = draw(st.floats(-1.0, 1.0)) * gap
        dist[i] = max(0.05, dist[i - 1] + delta)
    path = list(range(n))
    return path, prefix, dist


class TestEpsilonCoverProperty:
    @settings(max_examples=80, deadline=None)
    @given(data=path_with_distances(), epsilon=st.sampled_from([1.0, 0.5, 0.25, 0.1]))
    def test_cover_invariant(self, data, epsilon):
        path, prefix, dist = data
        portals = epsilon_cover_portals(path, prefix, dist, epsilon)
        assert portals, "reachable path must produce portals"
        for i in path:
            best = min(
                dist[path[c]] + abs(prefix[c] - prefix[i]) for c, _ in portals
            )
            assert best <= (1 + epsilon) * dist[i] + 1e-9

    @settings(max_examples=40, deadline=None)
    @given(data=path_with_distances())
    def test_portals_sorted_and_unique(self, data):
        path, prefix, dist = data
        portals = epsilon_cover_portals(path, prefix, dist, 0.3)
        indices = [i for i, _ in portals]
        assert indices == sorted(set(indices))

    @settings(max_examples=40, deadline=None)
    @given(data=path_with_distances())
    def test_closest_vertex_always_chosen(self, data):
        path, prefix, dist = data
        portals = epsilon_cover_portals(path, prefix, dist, 0.5)
        closest = min(dist.values())
        assert any(abs(d - closest) < 1e-12 for _, d in portals)


entry_lists = st.lists(
    st.tuples(st.floats(0, 100), st.floats(0, 50)),
    min_size=1,
    max_size=10,
).map(sorted)


class TestMinPortalPairProperty:
    @settings(max_examples=120, deadline=None)
    @given(eu=entry_lists, ev=entry_lists)
    def test_matches_bruteforce(self, eu, ev):
        brute = min(
            du + abs(pu - pv) + dv
            for (pu, du), (pv, dv) in itertools.product(eu, ev)
        )
        assert abs(min_portal_pair(eu, ev) - brute) <= 1e-9 * max(1.0, brute)

    @settings(max_examples=40, deadline=None)
    @given(eu=entry_lists, ev=entry_lists)
    def test_symmetry(self, eu, ev):
        # Equal up to float association (the summation order differs).
        a = min_portal_pair(eu, ev)
        b = min_portal_pair(ev, eu)
        assert abs(a - b) <= 1e-9 * max(1.0, abs(a))
