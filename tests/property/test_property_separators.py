"""Property-based tests: separator invariants on random graphs."""

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import GreedyPeelingEngine, build_decomposition
from repro.generators import (
    grid_2d,
    k_tree,
    outerplanar_graph,
    random_planar_graph,
    random_tree,
    series_parallel_graph,
)

FAST = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


graph_strategy = st.one_of(
    st.builds(
        random_tree,
        n=st.integers(2, 60),
        seed=st.integers(0, 10**6),
    ),
    st.builds(
        lambda n, seed: k_tree(max(n, 4), 3, seed=seed)[0],
        n=st.integers(5, 50),
        seed=st.integers(0, 10**6),
    ),
    st.builds(
        series_parallel_graph,
        n=st.integers(2, 60),
        seed=st.integers(0, 10**6),
    ),
    st.builds(
        outerplanar_graph,
        n=st.integers(3, 60),
        seed=st.integers(0, 10**6),
    ),
    st.builds(
        random_planar_graph,
        n=st.integers(3, 50),
        seed=st.integers(0, 10**6),
    ),
    st.builds(
        lambda r, c, seed: grid_2d(r, c, weight_range=(1.0, 9.0), seed=seed),
        r=st.integers(2, 8),
        c=st.integers(2, 8),
        seed=st.integers(0, 10**6),
    ),
)


class TestSeparatorProperties:
    @FAST
    @given(graph=graph_strategy, seed=st.integers(0, 1000))
    def test_greedy_peeling_satisfies_definition_1(self, graph, seed):
        separator = GreedyPeelingEngine(seed=seed).find_separator(graph)
        separator.validate(graph)  # (P1) + (P3) by construction

    @FAST
    @given(graph=graph_strategy)
    def test_decomposition_tree_invariants(self, graph):
        tree = build_decomposition(graph, validate=True)
        n = graph.num_vertices
        assert tree.depth <= math.log2(n) + 1
        assert set(tree.home) == set(graph.vertices())

    @FAST
    @given(graph=graph_strategy, seed=st.integers(0, 1000))
    def test_separator_vertices_subset_of_graph(self, graph, seed):
        separator = GreedyPeelingEngine(seed=seed).find_separator(graph)
        assert separator.vertices() <= set(graph.vertices())

    @FAST
    @given(graph=graph_strategy, seed=st.integers(0, 1000))
    def test_balance_after_removal(self, graph, seed):
        separator = GreedyPeelingEngine(seed=seed).find_separator(graph)
        assert separator.max_component_fraction(graph) <= 0.5
