"""Property-based tests: the augmentation + greedy routing pipeline
never strands a packet."""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    GreedyRouter,
    PathSeparatorAugmentation,
    build_decomposition,
    greedy_route,
)
from repro.core.smallworld import ClosestSeparatorAugmentation
from repro.generators import grid_2d, random_planar_graph, random_tree
from repro.graphs import dijkstra

SLOW = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

graph_strategy = st.one_of(
    st.builds(random_tree, n=st.integers(2, 40), seed=st.integers(0, 10**6)),
    st.builds(random_planar_graph, n=st.integers(3, 40), seed=st.integers(0, 10**6)),
    st.builds(lambda r, s: grid_2d(r, seed=s), r=st.integers(2, 6), s=st.integers(0, 10**6)),
)


class TestSmallWorldProperties:
    @SLOW
    @given(
        graph=graph_strategy,
        aug_seed=st.integers(0, 10**6),
        pair_seed=st.integers(0, 10**6),
    )
    def test_greedy_always_delivers(self, graph, aug_seed, pair_seed):
        tree = build_decomposition(graph)
        augmented = PathSeparatorAugmentation(tree).augment(graph, seed=aug_seed)
        rng = random.Random(pair_seed)
        vertices = sorted(graph.vertices(), key=repr)
        for _ in range(8):
            s = vertices[rng.randrange(len(vertices))]
            t = vertices[rng.randrange(len(vertices))]
            hops = greedy_route(augmented, s, t)
            assert hops[0] == s and hops[-1] == t

    @SLOW
    @given(graph=graph_strategy, aug_seed=st.integers(0, 10**6))
    def test_long_edges_have_true_distance_weights(self, graph, aug_seed):
        tree = build_decomposition(graph)
        augmented = PathSeparatorAugmentation(tree).augment(graph, seed=aug_seed)
        for v, (u, w) in list(augmented.long_edges.items())[:5]:
            true = dijkstra(graph, v)[0][u]
            assert abs(w - true) <= 1e-9 * max(1.0, true)

    @SLOW
    @given(graph=graph_strategy, aug_seed=st.integers(0, 10**6))
    def test_note2_contacts_deliver(self, graph, aug_seed):
        augmented = ClosestSeparatorAugmentation.build(graph).augment(
            graph, seed=aug_seed
        )
        router = GreedyRouter(augmented)
        vertices = sorted(graph.vertices(), key=repr)
        rng = random.Random(aug_seed)
        for _ in range(5):
            s = vertices[rng.randrange(len(vertices))]
            t = vertices[rng.randrange(len(vertices))]
            if s != t:
                assert router.hops(s, t) >= 1
