"""Property-based tests for the baseline oracles: exactness of CH and
ALT, and the TZ stretch envelope, over random connected graphs."""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import AltOracle, ContractionHierarchy, ThorupZwickOracle
from repro.graphs import Graph, dijkstra

SLOW = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def connected_graph(draw):
    n = draw(st.integers(2, 30))
    extra = draw(st.integers(0, 30))
    seed = draw(st.integers(0, 10**6))
    rng = random.Random(seed)
    g = Graph()
    g.add_vertex(0)
    for v in range(1, n):
        g.add_edge(rng.randrange(v), v, rng.uniform(0.1, 9.0))
    for _ in range(extra):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v and not g.has_edge(u, v):
            g.add_edge(u, v, rng.uniform(0.1, 9.0))
    return g


def sample_pairs(g, count, seed):
    rng = random.Random(seed)
    n = g.num_vertices
    return [(rng.randrange(n), rng.randrange(n)) for _ in range(count)]


class TestBaselineProperties:
    @SLOW
    @given(g=connected_graph(), pair_seed=st.integers(0, 10**6))
    def test_contraction_hierarchy_exact(self, g, pair_seed):
        ch = ContractionHierarchy(g)
        for u, v in sample_pairs(g, 8, pair_seed):
            true = dijkstra(g, u)[0][v]
            assert abs(ch.query(u, v) - true) <= 1e-9 * max(1.0, true)

    @SLOW
    @given(g=connected_graph(), pair_seed=st.integers(0, 10**6))
    def test_alt_exact(self, g, pair_seed):
        alt = AltOracle(g, num_landmarks=4, seed=0)
        for u, v in sample_pairs(g, 8, pair_seed):
            true = dijkstra(g, u)[0][v]
            assert abs(alt.query(u, v) - true) <= 1e-9 * max(1.0, true)

    @SLOW
    @given(
        g=connected_graph(),
        k=st.integers(1, 3),
        pair_seed=st.integers(0, 10**6),
    )
    def test_thorup_zwick_stretch_envelope(self, g, k, pair_seed):
        tz = ThorupZwickOracle(g, k=k, seed=0)
        for u, v in sample_pairs(g, 8, pair_seed):
            true = dijkstra(g, u)[0][v]
            est = tz.query(u, v)
            if u == v:
                assert est == 0.0
            else:
                assert true - 1e-9 <= est <= (2 * k - 1) * true + 1e-9
