"""Property-based tests: interval tree routing always delivers, along
the unique tree path."""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.generators import random_tree
from repro.graphs import dijkstra_tree, shortest_path
from repro.treerouting import IntervalTreeRouting


@st.composite
def routed_tree(draw):
    n = draw(st.integers(2, 80))
    seed = draw(st.integers(0, 10**6))
    graph = random_tree(n, seed=seed)
    root = draw(st.integers(0, n - 1))
    tree = dijkstra_tree(graph, root)
    return graph, IntervalTreeRouting(tree.parent, root)


class TestTreeRoutingProperties:
    @settings(max_examples=50, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(data=routed_tree(), pair_seed=st.integers(0, 10**6))
    def test_route_is_unique_tree_path(self, data, pair_seed):
        graph, routing = data
        rng = random.Random(pair_seed)
        n = graph.num_vertices
        s, t = rng.randrange(n), rng.randrange(n)
        route = routing.route(s, t)
        assert route == shortest_path(graph, s, t)

    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(data=routed_tree())
    def test_labels_unique(self, data):
        graph, routing = data
        labels = [routing.label(v) for v in graph.vertices()]
        assert len(set(labels)) == len(labels)
