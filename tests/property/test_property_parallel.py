"""Property-based tests for the parallel build path and the batched
Dijkstra primitive it rests on.

Two guarantees from docs/performance.md are exercised here:

* a parallel build is *byte-identical* to a serial one — not merely
  equivalent — across graph families, epsilons, and job counts;
* ``dijkstra``'s settled set is exactly ``{v : d(v) <= cutoff}`` among
  vertices reachable inside ``allowed``, and ``batched_dijkstra``
  reproduces the per-source result bit for bit.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import build_decomposition, build_labeling
from repro.core.serialize import dump_labeling
from repro.generators import k_tree, random_delaunay_graph, random_tree
from repro.graphs import Graph, batched_dijkstra, dijkstra

INF = float("inf")

FAMILIES = {
    "tree": lambda n, seed: random_tree(
        n, weight_range=(0.5, 6.0), seed=seed
    ),
    "ktree": lambda n, seed: k_tree(
        n, 2, weight_range=(0.5, 6.0), seed=seed
    )[0],
    "delaunay": lambda n, seed: random_delaunay_graph(n, seed=seed)[0],
}


@st.composite
def weighted_graph(draw):
    n = draw(st.integers(2, 24))
    extra = draw(st.integers(0, 30))
    seed = draw(st.integers(0, 10**6))
    rng = random.Random(seed)
    g = Graph()
    g.add_vertex(0)
    for v in range(1, n):
        g.add_edge(rng.randrange(v), v, rng.uniform(0.1, 10.0))
    for _ in range(extra):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v and not g.has_edge(u, v):
            g.add_edge(u, v, rng.uniform(0.1, 10.0))
    return g


class TestParallelEqualsSerial:
    # Each example forks a pool, so examples are expensive: keep the
    # counts low and the graphs small.
    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        family=st.sampled_from(sorted(FAMILIES)),
        n=st.integers(12, 40),
        seed=st.integers(0, 10**6),
        epsilon=st.sampled_from([0.5, 0.25, 0.1]),
        jobs=st.integers(2, 4),
    )
    def test_byte_identical_across_families(
        self, family, n, seed, epsilon, jobs
    ):
        g = FAMILIES[family](n, seed)
        tree = build_decomposition(g)
        serial = dump_labeling(build_labeling(g, tree, epsilon=epsilon))
        par = dump_labeling(
            build_labeling(
                g, tree, epsilon=epsilon, parallel=jobs, seed=seed
            )
        )
        assert par == serial


class TestDijkstraBoundaries:
    @settings(
        max_examples=50,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        g=weighted_graph(),
        cutoff_seed=st.integers(0, 10**6),
        allow_frac=st.floats(0.3, 1.0),
    )
    def test_settled_set_is_exactly_the_cutoff_ball(
        self, g, cutoff_seed, allow_frac
    ):
        rng = random.Random(cutoff_seed)
        n = g.num_vertices
        allowed = {0} | {
            v for v in range(n) if rng.random() < allow_frac
        }
        # Ground truth: unrestricted distances inside `allowed`.
        full, _ = dijkstra(g, 0, allowed=allowed)
        reachable = sorted(full.values())
        cutoff = rng.choice(reachable) if rng.random() < 0.5 else rng.uniform(
            0.0, (reachable[-1] or 1.0) * 1.2
        )
        dist, _ = dijkstra(g, 0, allowed=allowed, cutoff=cutoff)
        expected = {v for v, d in full.items() if d <= cutoff}
        assert set(dist) == expected
        for v in expected:
            assert dist[v] == full[v]

    @settings(
        max_examples=50,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        g=weighted_graph(),
        pick_seed=st.integers(0, 10**6),
        k=st.integers(1, 6),
    )
    def test_batched_equals_per_source(self, g, pick_seed, k):
        rng = random.Random(pick_seed)
        n = g.num_vertices
        sources = [rng.randrange(n) for _ in range(k)]
        batched = batched_dijkstra(g, sources)
        for s in set(sources):
            # Bit-for-bit, not approximately: distances are unique
            # fixpoints, independent of relaxation order.
            assert batched[s] == dijkstra(g, s)[0]
