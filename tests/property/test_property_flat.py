"""Property-based tests for the flat CSR core.

Two families of invariants, over randomized graphs (grids, Delaunay
triangulations, ``G(n, p)``, preferential attachment):

* **CSR round trip** — ``CSRGraph.from_graph`` then ``to_graph`` is
  the identity on the adjacency structure *and* on every edge weight,
  and per-vertex ``neighbors`` agrees with the source graph.
* **Kernel equivalence** — ``flat_estimate`` over ``FlatLabel`` pairs
  is bit-equal to the dict-path ``estimate_distance`` on every queried
  pair, including unreachable (infinite) answers and labels with no
  entries at all.

Like the differential wall, this suite never skips: the flat backend
is mandatory in the test environment.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import CSRGraph, FlatLabel, build_decomposition, build_labeling, flat_estimate
from repro.core.labeling import VertexLabel, estimate_distance
from repro.generators import (
    gnp_random_graph,
    grid_2d,
    preferential_attachment_graph,
    random_delaunay_graph,
)

SLOW = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


graph_strategy = st.one_of(
    st.builds(
        lambda r, seed: grid_2d(r, weight_range=(1.0, 5.0), seed=seed),
        r=st.integers(2, 7),
        seed=st.integers(0, 10**6),
    ),
    st.builds(
        lambda n, seed: random_delaunay_graph(n, seed=seed)[0],
        n=st.integers(4, 48),
        seed=st.integers(0, 10**6),
    ),
    st.builds(
        lambda n, seed: gnp_random_graph(
            n, 3.0 / n, seed=seed, weight_range=(0.5, 4.0), connect=True
        ),
        n=st.integers(4, 48),
        seed=st.integers(0, 10**6),
    ),
    st.builds(
        lambda n, seed: preferential_attachment_graph(
            n, 2, seed=seed, weight_range=(0.5, 4.0)
        ),
        n=st.integers(4, 48),
        seed=st.integers(0, 10**6),
    ),
)


class TestCSRRoundTrip:
    @SLOW
    @given(graph=graph_strategy)
    def test_to_graph_is_identity_on_adjacency_and_weights(self, graph):
        csr = CSRGraph.from_graph(graph)
        back = csr.to_graph()
        assert set(back.vertices()) == set(graph.vertices())
        want = {
            (min(u, v, key=repr), max(u, v, key=repr)): w
            for u, v, w in graph.edges()
        }
        got = {
            (min(u, v, key=repr), max(u, v, key=repr)): w
            for u, v, w in back.edges()
        }
        assert got == want  # same keys AND bit-equal float weights

    @SLOW
    @given(graph=graph_strategy)
    def test_neighbors_agree_per_vertex(self, graph):
        csr = CSRGraph.from_graph(graph)
        assert csr.num_vertices == len(set(graph.vertices()))
        for v in graph.vertices():
            assert v in csr
            want = {(n, graph.weight(v, n)) for n in graph.neighbors(v)}
            assert set(csr.neighbors(v)) == want

    @SLOW
    @given(graph=graph_strategy)
    def test_index_mapping_is_a_bijection(self, graph):
        csr = CSRGraph.from_graph(graph)
        seen = set()
        for v in graph.vertices():
            i = csr.index_of(v)
            assert 0 <= i < csr.num_vertices
            assert csr.vertex_of(i) == v
            seen.add(i)
        assert len(seen) == csr.num_vertices


class TestKernelEquivalence:
    @SLOW
    @given(
        graph=graph_strategy,
        epsilon=st.sampled_from([1.0, 0.25]),
        pair_seed=st.integers(0, 10**6),
    )
    def test_flat_estimate_bit_equals_dict_estimate(
        self, graph, epsilon, pair_seed
    ):
        tree = build_decomposition(graph)
        labeling = build_labeling(
            graph, tree, epsilon=epsilon, backend="dict"
        )
        flats = {
            v: FlatLabel.from_label(lab)
            for v, lab in labeling.labels.items()
        }
        verts = sorted(labeling.labels, key=repr)
        rng = random.Random(pair_seed)
        for _ in range(40):
            u = verts[rng.randrange(len(verts))]
            v = verts[rng.randrange(len(verts))]
            a = estimate_distance(labeling.labels[u], labeling.labels[v])
            b = flat_estimate(flats[u], flats[v])
            assert repr(a) == repr(b), (u, v, a, b)

    @SLOW
    @given(graph=graph_strategy)
    def test_unreachable_and_empty_labels_agree(self, graph):
        tree = build_decomposition(graph)
        labeling = build_labeling(graph, tree, epsilon=0.5, backend="dict")
        # A label with no entries shares no path key with anyone: both
        # kernels must answer inf against every real vertex, and the
        # flat round trip must preserve the emptiness.
        lonely = VertexLabel("__lonely__", {})
        lonely_flat = FlatLabel.from_label(lonely)
        assert lonely_flat.num_portals == 0
        assert lonely_flat.to_label().entries == {}
        for v, lab in labeling.labels.items():
            a = estimate_distance(lonely, lab)
            b = flat_estimate(lonely_flat, FlatLabel.from_label(lab))
            assert a == b == float("inf")
        # Two empty labels at the same vertex: distance zero by the
        # u == v short-circuit, in both kernels.
        assert estimate_distance(lonely, lonely) == 0.0
        assert flat_estimate(lonely_flat, lonely_flat) == 0.0

    @SLOW
    @given(graph=graph_strategy, seed=st.integers(0, 10**6))
    def test_flat_label_round_trip_is_identity(self, graph, seed):
        tree = build_decomposition(graph)
        labeling = build_labeling(graph, tree, epsilon=0.25, backend="dict")
        for lab in labeling.labels.values():
            back = FlatLabel.from_label(lab).to_label()
            assert back.vertex == lab.vertex
            assert back.entries == lab.entries
            assert back.words == lab.words
