"""Property-based tests for the graph substrate itself."""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graphs import (
    Graph,
    bidirectional_dijkstra,
    connected_components,
    dijkstra,
    path_cost,
)


@st.composite
def random_graph(draw):
    n = draw(st.integers(2, 30))
    extra = draw(st.integers(0, 40))
    seed = draw(st.integers(0, 10**6))
    rng = random.Random(seed)
    g = Graph()
    g.add_vertex(0)
    # Random spanning tree first, extra edges after: always connected.
    for v in range(1, n):
        g.add_edge(rng.randrange(v), v, rng.uniform(0.1, 10.0))
    for _ in range(extra):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v and not g.has_edge(u, v):
            g.add_edge(u, v, rng.uniform(0.1, 10.0))
    return g


class TestDijkstraProperties:
    @settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(g=random_graph())
    def test_triangle_inequality(self, g):
        dist0, _ = dijkstra(g, 0)
        for u, v, w in g.edges():
            assert dist0[v] <= dist0[u] + w + 1e-9
            assert dist0[u] <= dist0[v] + w + 1e-9

    @settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(g=random_graph(), pair_seed=st.integers(0, 10**6))
    def test_bidirectional_agrees_with_full(self, g, pair_seed):
        rng = random.Random(pair_seed)
        n = g.num_vertices
        u, v = rng.randrange(n), rng.randrange(n)
        full = dijkstra(g, u)[0][v]
        bi, path = bidirectional_dijkstra(g, u, v)
        assert abs(bi - full) <= 1e-9 * max(1.0, full)
        assert path[0] == u and path[-1] == v
        assert abs(path_cost(g, path) - full) <= 1e-9 * max(1.0, full)

    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(g=random_graph())
    def test_symmetry(self, g):
        dist0, _ = dijkstra(g, 0)
        last = g.num_vertices - 1
        dist_last, _ = dijkstra(g, last)
        assert abs(dist0[last] - dist_last[0]) <= 1e-9


class TestComponentProperties:
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(g=random_graph(), drop_seed=st.integers(0, 10**6))
    def test_components_partition_the_survivors(self, g, drop_seed):
        rng = random.Random(drop_seed)
        survivors = {v for v in g.vertices() if rng.random() < 0.7}
        comps = connected_components(g, within=survivors)
        seen = set()
        for comp in comps:
            assert not (comp & seen)
            seen |= comp
        assert seen == survivors

    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(g=random_graph())
    def test_connected_construction(self, g):
        assert len(connected_components(g)) == 1
