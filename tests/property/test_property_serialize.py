"""Property-based tests: label serialization round-trips exactly.

Both codecs: the JSON (``/1``) encoders round-trip values exactly; the
packed binary (``/2``) codec round-trips up to vertex canonicalization
(``1.0`` and ``1`` are one vertex family — the binary form keeps the
canonical member, which compares equal), and never changes an
estimate.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.binfmt import (
    decode_vertex_binary,
    encode_vertex_binary,
    pack_labeling,
    read_labeling_binary,
)
from repro.core.labeling import VertexLabel, estimate_distance
from repro.core.serialize import (
    RemoteLabels,
    canonical_vertex,
    decode_label,
    decode_vertex,
    encode_label,
    encode_vertex,
    shard_key_bytes,
)

scalar = st.one_of(
    st.integers(-(10**9), 10**9),
    st.text(max_size=12),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
)
vertex_strategy = st.recursive(
    scalar,
    lambda inner: st.tuples(inner, inner),
    max_leaves=4,
)

entry_list = st.lists(
    st.tuples(
        st.floats(0, 1e6, allow_nan=False),
        st.floats(0, 1e6, allow_nan=False),
    ),
    max_size=6,
).map(sorted)

label_strategy = st.builds(
    lambda v, entries: VertexLabel(
        vertex=v,
        entries={
            (i, j % 3, j % 2): [tuple(e) for e in ent]
            for j, (i, ent) in enumerate(entries.items())
        },
    ),
    v=vertex_strategy,
    entries=st.dictionaries(st.integers(0, 50), entry_list, max_size=5),
)


class TestSerializationProperties:
    @settings(max_examples=100, deadline=None)
    @given(v=vertex_strategy)
    def test_vertex_round_trip(self, v):
        assert decode_vertex(encode_vertex(v)) == v

    @settings(max_examples=60, deadline=None)
    @given(label=label_strategy)
    def test_label_round_trip(self, label):
        back = decode_label(encode_label(label))
        assert back.vertex == label.vertex
        assert back.entries == label.entries

    @settings(max_examples=40, deadline=None)
    @given(a=label_strategy, b=label_strategy)
    def test_estimates_stable_under_round_trip(self, a, b):
        before = estimate_distance(a, b)
        after = estimate_distance(
            decode_label(encode_label(a)), decode_label(encode_label(b))
        )
        assert before == after


def _binary_vertex_round_trip(v):
    out = bytearray()
    encode_vertex_binary(v, out)
    back, pos = decode_vertex_binary(bytes(out), 0)
    assert pos == len(out)
    return back


class TestBinaryCodecProperties:
    @settings(max_examples=100, deadline=None)
    @given(v=vertex_strategy)
    def test_vertex_round_trip_up_to_canonicalization(self, v):
        back = _binary_vertex_round_trip(v)
        assert back == canonical_vertex(v)
        assert back == v  # canonical member compares equal to the original

    @settings(max_examples=100, deadline=None)
    @given(v=vertex_strategy)
    def test_encoding_is_canonical_per_numeric_family(self, v):
        # Same shard key <=> same binary encoding: the hash index and
        # the record field agree on one form per vertex family.
        out_v, out_c = bytearray(), bytearray()
        encode_vertex_binary(v, out_v)
        encode_vertex_binary(canonical_vertex(v), out_c)
        assert bytes(out_v) == bytes(out_c)

    @settings(max_examples=40, deadline=None)
    @given(
        labels=st.lists(label_strategy, max_size=6, unique_by=lambda l: shard_key_bytes(l.vertex)),
        epsilon=st.floats(0.01, 2.0, allow_nan=False),
        num_shards=st.integers(1, 8),
    )
    def test_labeling_pack_read_round_trip(self, labels, epsilon, num_shards):
        remote = RemoteLabels(epsilon, {l.vertex: l for l in labels})
        back = read_labeling_binary(pack_labeling(remote, num_shards=num_shards))
        assert back.epsilon == epsilon
        assert back.labels == remote.labels

    @settings(max_examples=30, deadline=None)
    @given(a=label_strategy, b=label_strategy)
    def test_estimates_stable_under_binary_round_trip(self, a, b):
        if shard_key_bytes(a.vertex) == shard_key_bytes(b.vertex):
            return  # one vertex family: not a valid two-label store
        remote = RemoteLabels(0.25, {a.vertex: a, b.vertex: b})
        back = read_labeling_binary(pack_labeling(remote, num_shards=2))
        assert estimate_distance(
            back.labels[a.vertex], back.labels[b.vertex]
        ) == estimate_distance(a, b)
