"""Property-based tests: label serialization round-trips exactly."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.labeling import VertexLabel, estimate_distance
from repro.core.serialize import decode_label, decode_vertex, encode_label, encode_vertex

scalar = st.one_of(
    st.integers(-(10**9), 10**9),
    st.text(max_size=12),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
)
vertex_strategy = st.recursive(
    scalar,
    lambda inner: st.tuples(inner, inner),
    max_leaves=4,
)

entry_list = st.lists(
    st.tuples(
        st.floats(0, 1e6, allow_nan=False),
        st.floats(0, 1e6, allow_nan=False),
    ),
    max_size=6,
).map(sorted)

label_strategy = st.builds(
    lambda v, entries: VertexLabel(
        vertex=v,
        entries={
            (i, j % 3, j % 2): [tuple(e) for e in ent]
            for j, (i, ent) in enumerate(entries.items())
        },
    ),
    v=vertex_strategy,
    entries=st.dictionaries(st.integers(0, 50), entry_list, max_size=5),
)


class TestSerializationProperties:
    @settings(max_examples=100, deadline=None)
    @given(v=vertex_strategy)
    def test_vertex_round_trip(self, v):
        assert decode_vertex(encode_vertex(v)) == v

    @settings(max_examples=60, deadline=None)
    @given(label=label_strategy)
    def test_label_round_trip(self, label):
        back = decode_label(encode_label(label))
        assert back.vertex == label.vertex
        assert back.entries == label.entries

    @settings(max_examples=40, deadline=None)
    @given(a=label_strategy, b=label_strategy)
    def test_estimates_stable_under_round_trip(self, a, b):
        before = estimate_distance(a, b)
        after = estimate_distance(
            decode_label(encode_label(a)), decode_label(encode_label(b))
        )
        assert before == after
