import pytest

networkx = pytest.importorskip("networkx")

from repro.generators import grid_2d, random_delaunay_graph
from repro.planar import embed_planar, star_triangulate


class TestStarTriangulate:
    def test_grid_gets_stars(self):
        g = grid_2d(4)
        system = embed_planar(g)
        tri, triangles, virtual = star_triangulate(g, system)
        # Every square face (and the outer face) receives a star.
        assert len(virtual) == len(system.faces())
        assert tri.num_vertices == g.num_vertices + len(virtual)

    def test_triangle_count_matches_euler(self):
        g = grid_2d(4)
        system = embed_planar(g)
        tri, triangles, virtual = star_triangulate(g, system)
        # Triangulated planar graph: f = 2n - 4 (2-connected triangulation).
        n, m = tri.num_vertices, tri.num_edges
        assert len(triangles) == m - n + 2  # Euler: f = m - n + 2

    def test_already_triangulated_untouched(self):
        g, _ = random_delaunay_graph(50, seed=1)
        system = embed_planar(g)
        tri, triangles, virtual = star_triangulate(g, system)
        # Delaunay interiors are triangles; only the outer face needs a star.
        assert len(virtual) <= 1
        if not virtual:
            assert tri.num_edges == g.num_edges

    def test_original_graph_untouched(self):
        g = grid_2d(3)
        edges_before = g.num_edges
        star_triangulate(g, embed_planar(g))
        assert g.num_edges == edges_before

    def test_every_real_vertex_on_a_triangle(self):
        g = grid_2d(5)
        tri, triangles, virtual = star_triangulate(g, embed_planar(g))
        covered = {u for t in triangles for u in t if u not in virtual}
        assert covered == set(g.vertices())
