import pytest

networkx = pytest.importorskip("networkx")

from repro.generators import grid_2d, hypercube, outerplanar_graph, random_delaunay_graph
from repro.graphs import Graph
from repro.planar import NotPlanarError, RotationSystem, embed_planar, is_planar
from repro.util.errors import GraphError


class TestRotationSystem:
    def test_triangle_faces(self):
        # A triangle embedded has two faces (inner + outer).
        order = {0: [1, 2], 1: [2, 0], 2: [0, 1]}
        system = RotationSystem(order)
        assert len(system.faces()) == 2

    def test_face_half_edge_partition(self):
        g = grid_2d(4)
        system = embed_planar(g)
        half_edges = [he for face in system.faces() for he in face]
        assert len(half_edges) == 2 * g.num_edges
        assert len(set(half_edges)) == len(half_edges)

    def test_bridge_face(self):
        # A single edge: one face containing both directions.
        order = {0: [1], 1: [0]}
        system = RotationSystem(order)
        faces = system.faces()
        assert len(faces) == 1
        assert len(faces[0]) == 2

    def test_next_half_edge_unknown(self):
        system = RotationSystem({0: [1], 1: [0]})
        with pytest.raises(GraphError):
            system.next_half_edge((0, 99))

    def test_euler_check_grid(self):
        g = grid_2d(5)
        embed_planar(g).verify_euler(g)  # no raise

    def test_euler_detects_bad_rotation(self):
        # K4 with a "twisted" rotation giving genus > 0.
        g = Graph([(0, 1), (1, 2), (2, 3), (3, 0), (0, 2), (1, 3)])
        good = embed_planar(g)
        good.verify_euler(g)
        # Swap one vertex's rotation to break the embedding.
        twisted = {v: list(nbrs) for v, nbrs in good.order.items()}
        if len(twisted[0]) >= 3:
            twisted[0][0], twisted[0][1] = twisted[0][1], twisted[0][0]
        system = RotationSystem(twisted)
        try:
            system.verify_euler(g)
        except NotPlanarError:
            pass  # detected, as expected for most swaps
        # (Some swaps keep planarity; the test asserts no crash either way.)

    def test_vertex_set_mismatch(self):
        g = grid_2d(3)
        system = RotationSystem({0: []})
        with pytest.raises(GraphError):
            system.verify_euler(g)


class TestEmbedPlanar:
    def test_planar_families(self):
        for g in (grid_2d(6), outerplanar_graph(40, seed=1), random_delaunay_graph(60, seed=2)[0]):
            system = embed_planar(g)
            assert system.num_edges == g.num_edges

    def test_nonplanar_rejected(self):
        with pytest.raises(NotPlanarError):
            embed_planar(hypercube(4))

    def test_is_planar(self):
        assert is_planar(grid_2d(4))
        assert not is_planar(hypercube(4))
