"""The self-contained DMP planar embedder, cross-validated."""

import random

import pytest

from repro.generators import (
    complete_bipartite,
    cycle_graph,
    grid_2d,
    hypercube,
    outerplanar_graph,
    random_delaunay_graph,
    random_planar_graph,
    random_tree,
    series_parallel_graph,
)
from repro.graphs import Graph
from repro.planar import NotPlanarError, embed_planar, is_planar
from repro.planar.dmp import dmp_embed


class TestEmbedsPlanarFamilies:
    @pytest.mark.parametrize(
        "maker",
        [
            lambda: cycle_graph(12),
            lambda: grid_2d(7),
            lambda: random_tree(50, seed=1),
            lambda: outerplanar_graph(40, seed=2),
            lambda: series_parallel_graph(60, seed=3),
            lambda: random_planar_graph(80, seed=4),
            lambda: random_delaunay_graph(100, seed=5)[0],
        ],
        ids=["cycle", "grid", "tree", "outerplanar", "sp", "planar", "delaunay"],
    )
    def test_embeds_and_verifies(self, maker):
        g = maker()
        system = dmp_embed(g)  # verify_euler runs inside
        assert system.num_edges == g.num_edges

    def test_single_edge(self):
        system = dmp_embed(Graph([(0, 1)]))
        assert len(system.faces()) == 1

    def test_empty_and_isolated(self):
        g = Graph()
        g.add_vertex("solo")
        system = dmp_embed(g)
        assert system.faces() == []

    def test_cut_vertices_merge(self):
        # Two squares sharing one vertex: blocks merge at the cut.
        g = Graph(
            [(0, 1), (1, 2), (2, 3), (3, 0), (0, 10), (10, 11), (11, 12), (12, 0)]
        )
        dmp_embed(g)

    def test_disconnected(self):
        g = Graph([(0, 1), (1, 2), (0, 2)])
        g.add_edge(10, 11)
        dmp_embed(g)


class TestRejectsNonPlanar:
    def test_k5(self):
        k5 = Graph([(i, j) for i in range(5) for j in range(i + 1, 5)])
        with pytest.raises(NotPlanarError):
            dmp_embed(k5)

    def test_k33(self):
        with pytest.raises(NotPlanarError):
            dmp_embed(complete_bipartite(3, 3))

    def test_hypercube(self):
        with pytest.raises(NotPlanarError):
            dmp_embed(hypercube(4))

    def test_k5_with_pendant(self):
        # Non-planarity inside one block of a 1-connected graph.
        g = Graph([(i, j) for i in range(5) for j in range(i + 1, 5)])
        g.add_edge(0, "pendant")
        with pytest.raises(NotPlanarError):
            dmp_embed(g)


class TestCrossValidation:
    def test_agrees_with_networkx_on_random_graphs(self):
        pytest.importorskip("networkx")
        rng = random.Random(7)
        for _ in range(40):
            n = rng.randint(4, 18)
            g = Graph()
            g.add_vertex(0)
            for v in range(1, n):
                g.add_edge(rng.randrange(v), v)
            for _ in range(rng.randint(0, n)):
                u, v = rng.randrange(n), rng.randrange(n)
                if u != v and not g.has_edge(u, v):
                    g.add_edge(u, v)
            ours = is_planar(g, method="dmp")
            theirs = is_planar(g, method="networkx")
            assert ours == theirs, f"disagreement on {list(g.edges())}"

    def test_default_method_is_dmp(self):
        # embed_planar must work without networkx-specific behaviour.
        g = grid_2d(4)
        system = embed_planar(g)
        system.verify_euler(g)

    def test_planar_engine_uses_dmp(self):
        # The full separator engine path on the self-contained embedder.
        from repro.planar import PlanarCycleEngine

        g = random_delaunay_graph(80, seed=8)[0]
        sep = PlanarCycleEngine().find_separator(g)
        sep.validate(g)


class TestBoundedGenus:
    def test_torus_rejected(self):
        # A 4x4 torus has genus 1: planarity must fail, which is what
        # sends bounded-genus graphs to the greedy engine instead.
        from repro.generators import torus_2d

        with pytest.raises(NotPlanarError):
            dmp_embed(torus_2d(4))

    def test_small_torus_like_k5_subdivision(self):
        # A subdivision of K5 is still non-planar.
        g = Graph()
        mid = 100
        for i in range(5):
            for j in range(i + 1, 5):
                g.add_edge(i, mid)
                g.add_edge(mid, j)
                mid += 1
        with pytest.raises(NotPlanarError):
            dmp_embed(g)
