import pytest

networkx = pytest.importorskip("networkx")

from repro.core import build_decomposition
from repro.generators import (
    grid_2d,
    hypercube,
    outerplanar_graph,
    random_delaunay_graph,
    random_planar_graph,
    random_tree,
)
from repro.graphs import connected_components
from repro.planar import NotPlanarError, PlanarCycleEngine, balanced_fundamental_cycle
from repro.util.errors import GraphError


class TestBalancedFundamentalCycle:
    def test_grid_cycle_is_two_root_paths(self):
        g = grid_2d(8)
        paths = balanced_fundamental_cycle(g)
        assert len(paths) == 2
        # Both paths share the tree root.
        assert paths[0][0] == paths[1][0]

    def test_cycle_gives_good_balance_on_grid(self):
        g = grid_2d(10)
        paths = balanced_fundamental_cycle(g)
        removed = set(paths[0]) | set(paths[1])
        comps = connected_components(g, within=set(g.vertices()) - removed)
        assert comps[0] and len(comps[0]) <= (2 / 3) * g.num_vertices

    def test_paths_are_shortest(self):
        g = random_delaunay_graph(100, seed=1)[0]
        from repro.core import PathSeparator, SeparatorPhase

        paths = balanced_fundamental_cycle(g)
        # Validation might fail (P3) but (P1) must hold; check via cost.
        from repro.graphs import dijkstra, path_cost

        for path in paths:
            dist, _ = dijkstra(g, path[0])
            assert path_cost(g, path) == pytest.approx(dist[path[-1]])

    def test_tree_input_rejected(self):
        with pytest.raises(GraphError, match="tree"):
            balanced_fundamental_cycle(random_tree(30, seed=2))

    def test_nonplanar_rejected(self):
        with pytest.raises(NotPlanarError):
            balanced_fundamental_cycle(hypercube(4))

    def test_deterministic(self):
        g = grid_2d(7)
        assert balanced_fundamental_cycle(g) == balanced_fundamental_cycle(g)


class TestPlanarCycleEngine:
    @pytest.mark.parametrize(
        "maker",
        [
            lambda: grid_2d(9),
            lambda: grid_2d(8, weight_range=(1.0, 6.0), seed=1),
            lambda: random_delaunay_graph(120, seed=2)[0],
            lambda: random_planar_graph(100, seed=3),
            lambda: outerplanar_graph(70, seed=4),
        ],
        ids=["grid", "weighted_grid", "delaunay", "planar", "outerplanar"],
    )
    def test_valid_separator(self, maker):
        g = maker()
        sep = PlanarCycleEngine().find_separator(g)
        sep.validate(g)
        assert sep.num_paths <= 6  # 2-3 cycles of 2 paths, usually 1 cycle

    def test_full_decomposition(self):
        g = random_delaunay_graph(150, seed=5)[0]
        tree = build_decomposition(g, engine=PlanarCycleEngine(), validate=True)
        assert tree.max_paths_per_node <= 6

    def test_tree_handled_via_centroid(self):
        g = random_tree(40, seed=6)
        sep = PlanarCycleEngine().find_separator(g)
        sep.validate(g)
        assert sep.num_paths == 1

    def test_nonplanar_raises(self):
        with pytest.raises(NotPlanarError):
            PlanarCycleEngine().find_separator(hypercube(4))

    def test_empty_within(self):
        g = grid_2d(3)
        assert PlanarCycleEngine().find_separator(g, within=set()).num_paths == 0

    def test_oracle_on_top(self):
        from repro.core import PathSeparatorOracle
        from repro.graphs import dijkstra
        from tests.conftest import pair_sample

        g = grid_2d(7, weight_range=(1.0, 5.0), seed=7)
        oracle = PathSeparatorOracle.build(g, epsilon=0.25, engine=PlanarCycleEngine())
        for u, v in pair_sample(g, 40, seed=8):
            true = dijkstra(g, u)[0][v]
            est = oracle.query(u, v)
            assert true - 1e-9 <= est <= 1.25 * true + 1e-9
