"""End-to-end pipelines: every data structure on every graph family."""

import pytest

from repro.baselines import ExactOracle, ThorupZwickOracle
from repro.core import (
    CompactRoutingScheme,
    GreedyRouter,
    PathSeparatorAugmentation,
    PathSeparatorOracle,
    build_decomposition,
)
from repro.generators import road_network
from repro.graphs import dijkstra

from tests.conftest import family_graphs, pair_sample

FAMILIES = family_graphs("medium")


@pytest.mark.parametrize("name,graph", FAMILIES, ids=[n for n, _ in FAMILIES])
class TestFullPipelinePerFamily:
    def test_oracle_routing_smallworld_agree(self, name, graph):
        epsilon = 0.25
        tree = build_decomposition(graph, validate=True)
        oracle = PathSeparatorOracle.build(graph, epsilon=epsilon, tree=tree)
        scheme = CompactRoutingScheme.build(graph, tree=tree)
        exact = ExactOracle(graph)

        for u, v in pair_sample(graph, 25, seed=42):
            true = exact.query(u, v)
            est = oracle.query(u, v)
            assert true - 1e-9 <= est <= (1 + epsilon) * true + 1e-9

            hops = scheme.route(u, v)
            assert hops[0] == u and hops[-1] == v
            cost = scheme.route_cost(hops)
            # Route is a real walk: at least the distance, at most 3x.
            assert true - 1e-9 <= cost <= 3 * true + 1e-6
            # The oracle estimate and the anchor route describe the
            # same structure: both must be >= the true distance.
            assert est >= true - 1e-9

    def test_smallworld_augmentation_runs(self, name, graph):
        tree = build_decomposition(graph)
        aug = PathSeparatorAugmentation(tree).augment(graph, seed=1)
        router = GreedyRouter(aug)
        pairs = pair_sample(graph, 15, seed=2)
        mean = router.mean_hops(pairs)
        assert mean >= 1.0


class TestRoadNetworkScenario:
    """A realistic workload: an oracle answering many queries on a
    road network, cross-checked against exact and TZ baselines."""

    @pytest.fixture(scope="class")
    def setup(self):
        g = road_network(20, seed=3)
        return (
            g,
            PathSeparatorOracle.build(g, epsilon=0.1),
            ThorupZwickOracle(g, k=2, seed=0),
            ExactOracle(g),
        )

    def test_pathsep_always_tighter_guarantee_than_tz(self, setup):
        g, ps, tz, exact = setup
        ps_worst = tz_worst = 1.0
        for u, v in pair_sample(g, 60, seed=4):
            true = exact.query(u, v)
            ps_worst = max(ps_worst, ps.query(u, v) / true)
            tz_worst = max(tz_worst, tz.query(u, v) / true)
        assert ps_worst <= 1.1 + 1e-9
        assert tz_worst <= 3.0 + 1e-9

    def test_space_accounting(self, setup):
        g, ps, tz, _ = setup
        assert ps.space_words() > 0
        assert tz.space_words() > 0


class TestDecompositionReuse:
    def test_one_tree_feeds_all_structures(self):
        from repro.generators import grid_2d

        g = grid_2d(9)
        tree = build_decomposition(g)
        oracle = PathSeparatorOracle.build(g, tree=tree)
        scheme = CompactRoutingScheme.build(g, tree=tree)
        aug = PathSeparatorAugmentation(tree).augment(g, seed=5)
        assert oracle.tree is tree
        assert scheme.tree is tree
        assert aug.num_long_edges > 0
