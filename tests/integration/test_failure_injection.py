"""Failure injection: corrupted structures are detected, degraded ones
fail safe (estimates stay upper bounds, never silently too small)."""

import pytest

from repro.core import (
    CompactRoutingScheme,
    PathSeparator,
    SeparatorPhase,
    build_decomposition,
    build_labeling,
)
from repro.core.decomposition import DecompositionTree
from repro.generators import grid_2d
from repro.graphs import dijkstra
from repro.util.errors import GraphError, InvalidDecompositionError, InvalidSeparatorError

from tests.conftest import pair_sample


class TestSeparatorTampering:
    def test_shortcut_tampering_detected(self):
        # Raise the weight of one separator-path edge so the stored
        # path is no longer minimum cost: validate must flag (P1).
        grid = grid_2d(10)
        tree = build_decomposition(grid)
        node = tree.nodes[0]
        sep = node.separator
        path = next(p for p in sep.all_paths() if len(p) >= 3)
        u, v = path[0], path[1]
        g = grid.copy()
        g.add_edge(u, v, 100.0)
        with pytest.raises(InvalidSeparatorError):
            sep.validate(g, within=node.vertices)

    def test_unbalanced_tampering_detected(self, small_grid):
        sep = PathSeparator(phases=[SeparatorPhase(paths=[[(0, 0)]])])
        with pytest.raises(InvalidSeparatorError):
            sep.validate(small_grid)


class TestDecompositionTampering:
    def test_duplicate_home_detected(self, small_grid):
        tree = build_decomposition(small_grid)
        # Inject the root separator's vertex into a deeper separator.
        stolen = next(iter(tree.nodes[0].separator.vertices()))
        victim = tree.nodes[-1]
        victim.separator.phases[0].paths.append([stolen])
        with pytest.raises(InvalidDecompositionError):
            tree.validate(check_shortest=False)

    def test_oversized_child_detected(self, small_grid):
        tree = build_decomposition(small_grid)
        parent = next(n for n in tree.nodes if n.children)
        child = tree.nodes[parent.children[0]]
        # Shrink the recorded parent so the child looks too big.
        parent.vertices = frozenset(list(child.vertices)[:1]) | child.vertices
        with pytest.raises(InvalidDecompositionError):
            tree.validate(check_shortest=False)


class TestLabelDegradation:
    def test_dropping_entries_never_underestimates(self, weighted_grid):
        # A lossy channel drops label entries: estimates may worsen but
        # must remain upper bounds on the true distance.
        labeling = build_labeling(
            weighted_grid, build_decomposition(weighted_grid), epsilon=0.25
        )
        pairs = pair_sample(weighted_grid, 30, seed=1)
        for u, v in pairs:
            label_u = labeling.label(u)
            if len(label_u.entries) > 1:
                dropped = dict(list(label_u.entries.items())[1:])
                label_u = type(label_u)(vertex=u, entries=dropped)
            from repro.core.labeling import estimate_distance

            est = estimate_distance(label_u, labeling.label(v))
            true = dijkstra(weighted_grid, u)[0][v]
            assert est >= true - 1e-9

    def test_empty_labels_give_inf_not_garbage(self, small_grid):
        from repro.core.labeling import VertexLabel, estimate_distance

        empty = VertexLabel(vertex="ghost")
        labeling = build_labeling(small_grid, build_decomposition(small_grid))
        assert estimate_distance(empty, labeling.label((0, 0))) == float("inf")


def _pair_needing_walk(graph, scheme):
    """A vertex pair whose best routing key anchors them at different
    path positions (so the walk stage actually runs)."""
    vertices = sorted(graph.vertices())
    for u in vertices:
        for v in vertices:
            if u == v:
                continue
            key = scheme.select_key(u, v)
            eu = scheme.labels[u].entries[key]
            ev = scheme.labels[v].entries[key]
            if eu[0] != ev[0]:
                return u, v
    return None


class TestRoutingTampering:
    def test_corrupt_walk_pointer_detected(self):
        # A 10x10 unit grid has long separator paths, so plenty of
        # routes exercise the walk stage.
        walk_grid = grid_2d(10)
        scheme = CompactRoutingScheme.build(walk_grid)
        pair = _pair_needing_walk(walk_grid, scheme)
        assert pair is not None, "test graph produced no walking route"
        # Break every path link: the walk stage must raise, not hang.
        for v, entries in scheme.tables.items():
            for entry in entries.values():
                if entry.on_path_index is not None:
                    entry.path_next = None
                    entry.path_prev = None
        with pytest.raises(GraphError):
            scheme.route(*pair)

    def test_guard_stops_forwarding_loops(self):
        walk_grid = grid_2d(10)
        scheme = CompactRoutingScheme.build(walk_grid)
        # Create an ascend cycle: two off-path vertices pointing at
        # each other under the same key.
        for v, entries in scheme.tables.items():
            for key, entry in entries.items():
                hop = entry.parent_hop
                if hop is None:
                    continue
                other = scheme.tables[hop].get(key)
                if other is None or other.on_path_index is not None:
                    continue
                other.parent_hop = v  # v -> hop -> v forever
                # Force the corrupted key to be selected by removing
                # all other shared keys from v's label view.
                original = dict(scheme.labels[v].entries)
                scheme.labels[v].entries.clear()
                scheme.labels[v].entries[key] = original[key]
                candidates = [
                    t
                    for t in walk_grid.vertices()
                    if t not in (v, hop) and key in scheme.labels[t].entries
                ]
                assert candidates
                with pytest.raises(GraphError, match="loop"):
                    scheme.route(v, candidates[0])
                return
        pytest.skip("no suitable off-path chain to corrupt")
