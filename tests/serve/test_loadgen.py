"""Load generator: pair sources, closed-loop run, report, bench record."""

import asyncio
import json

import pytest

from repro.serve import OracleServer, run_loadgen, synthesize_pairs
from repro.serve.loadgen import LoadgenError, LoadgenReport, read_pairs_file
from repro.obs import write_bench_json


class TestPairSources:
    def test_synthesize_excludes_self_pairs(self):
        pairs = synthesize_pairs(list(range(5)), 200, seed=3)
        assert len(pairs) == 200
        assert all(u != v for u, v in pairs)

    def test_synthesize_is_seeded(self):
        vs = list(range(10))
        assert synthesize_pairs(vs, 50, seed=1) == synthesize_pairs(vs, 50, seed=1)
        assert synthesize_pairs(vs, 50, seed=1) != synthesize_pairs(vs, 50, seed=2)

    def test_synthesize_needs_two_vertices(self):
        with pytest.raises(LoadgenError):
            synthesize_pairs([1], 5)

    def test_read_pairs_file(self, tmp_path):
        path = tmp_path / "pairs.txt"
        path.write_text("# header\n0 1\n\n a b \n")
        assert read_pairs_file(path) == [(0, 1), ("a", "b")]

    def test_read_pairs_file_rejects_bad_lines(self, tmp_path):
        path = tmp_path / "pairs.txt"
        path.write_text("0 1 2\n")
        with pytest.raises(LoadgenError, match="expected 'u v'"):
            read_pairs_file(path)
        path.write_text("# only comments\n")
        with pytest.raises(LoadgenError, match="no pairs"):
            read_pairs_file(path)


class TestRunLoadgen:
    def _run(self, catalog, remote_labels, **kwargs):
        async def main():
            server = OracleServer(catalog, port=0, cache_size=64)
            await server.start()
            pairs = synthesize_pairs(list(remote_labels.vertices()), 40, seed=9)
            report = await run_loadgen(
                "127.0.0.1", server.port, pairs, verify=remote_labels, **kwargs
            )
            await server.shutdown()
            return report

        return asyncio.run(main())

    def test_dist_mode_verifies_clean(self, catalog, remote_labels):
        report = self._run(catalog, remote_labels, concurrency=4)
        assert report.ok == 40
        assert report.errors == 0
        # Byte-exact agreement with the offline estimates.
        assert report.mismatches == 0
        assert report.qps > 0
        assert report.latency_ns.count == 40
        assert report.latency_ms(99) >= report.latency_ms(50) >= 0

    def test_batch_mode(self, catalog, remote_labels):
        report = self._run(catalog, remote_labels, concurrency=2, batch=8)
        assert report.ok == 40 and report.errors == 0 and report.mismatches == 0
        # 40 pairs in groups of 8 -> 5 requests -> 5 latency samples.
        assert report.latency_ns.count == 5

    def test_connection_refused_reports_zeros(self):
        # A server that refuses every connection is a *report*, not a
        # traceback: zeros everywhere, errors counted, samples kept.
        report = asyncio.run(
            run_loadgen(
                "127.0.0.1", 1, [(0, 1), (2, 3)], concurrency=1,
                attempt_timeout=0.5,
            )
        )
        assert report.ok == 0
        assert report.errors == 2
        assert report.mismatches == 0
        assert report.qps == 0.0
        assert report.error_rate == 1.0
        assert report.error_samples  # the root cause is preserved
        # rows()/meta() stay JSON-safe with zero completions.
        json.dumps(report.rows())
        json.dumps(report.meta())

    def test_retries_recover_from_transient_faults(self, catalog, remote_labels):
        # A fault plan dropping half the replies is invisible to a
        # retrying client: every answer still verifies byte-exactly.
        from repro.serve import FaultPlan

        plan = FaultPlan.from_rules(
            [{"kind": "drop", "rate": 0.5, "ops": ["DIST"]}], seed=11
        )

        async def main():
            server = OracleServer(
                catalog, port=0, cache_size=64, fault_plan=plan
            )
            await server.start()
            pairs = synthesize_pairs(list(remote_labels.vertices()), 30, seed=4)
            report = await run_loadgen(
                "127.0.0.1",
                server.port,
                pairs,
                verify=remote_labels,
                concurrency=3,
                retries=8,
                attempt_timeout=0.25,
            )
            await server.shutdown()
            return report

        report = asyncio.run(main())
        assert report.ok == 30
        assert report.errors == 0
        assert report.mismatches == 0
        assert report.retries > 0  # the plan really did bite

    def test_invalid_knobs(self):
        with pytest.raises(LoadgenError):
            asyncio.run(run_loadgen("h", 1, [(0, 1)], concurrency=0))
        with pytest.raises(LoadgenError):
            asyncio.run(run_loadgen("h", 1, [(0, 1)], batch=0))


class TestBenchRecord:
    def test_bench_json_has_qps_and_percentiles(
        self, catalog, remote_labels, tmp_path
    ):
        report = TestRunLoadgen()._run(catalog, remote_labels, concurrency=2)
        out = tmp_path / "BENCH_serve.json"
        write_bench_json(
            out,
            "serve",
            header=["metric", "value"],
            rows=report.rows(),
            meta=report.meta(),
        )
        payload = json.loads(out.read_text())
        assert payload["format"] == "repro-bench/1"
        assert payload["name"] == "serve"
        assert payload["meta"]["qps"] > 0
        for key in ("p50", "p90", "p99", "max", "mean"):
            assert key in payload["meta"]["latency_ms"]
        assert payload["meta"]["mismatches"] == 0


class TestZipfPairs:
    def test_deterministic_in_seed_and_exponent(self):
        vertices = list(range(40))
        first = synthesize_pairs(vertices, 200, seed=5, zipf=1.2)
        assert first == synthesize_pairs(vertices, 200, seed=5, zipf=1.2)
        assert first != synthesize_pairs(vertices, 200, seed=6, zipf=1.2)
        assert first != synthesize_pairs(vertices, 200, seed=5, zipf=0.4)

    def test_no_self_pairs_and_in_population(self):
        vertices = [(i, i) for i in range(12)]
        pairs = synthesize_pairs(vertices, 300, seed=1, zipf=1.5)
        assert len(pairs) == 300
        for u, v in pairs:
            assert u != v
            assert u in vertices and v in vertices

    def test_skews_toward_low_ranks(self):
        # With s=1.5 the ten lowest-rank vertices (sorted-by-repr order,
        # the documented ranking) should soak up well over half of all
        # endpoint draws; uniform sampling would give them ~10%.
        vertices = list(range(100))
        ranked = sorted(vertices, key=repr)
        pairs = synthesize_pairs(vertices, 2000, seed=0, zipf=1.5)
        hot = set(ranked[:10])
        endpoint_draws = [v for pair in pairs for v in pair]
        hot_share = sum(v in hot for v in endpoint_draws) / len(endpoint_draws)
        assert hot_share > 0.5
        uniform = synthesize_pairs(vertices, 2000, seed=0)
        uniform_share = sum(
            v in hot for pair in uniform for v in pair
        ) / (2 * len(uniform))
        assert uniform_share < 0.25

    def test_negative_exponent_rejected(self):
        with pytest.raises(LoadgenError):
            synthesize_pairs(list(range(10)), 5, zipf=-0.5)


class TestServerCacheProbe:
    def test_report_carries_server_cache_hit_rate(self, catalog, remote_labels):
        # One pair repeated: the server's pair cache misses once and
        # hits for every repeat; the loadgen's STATS probe turns that
        # into a hit rate on the report.
        vertices = sorted(remote_labels.vertices(), key=repr)
        pairs = [(vertices[0], vertices[1])] * 20

        async def main():
            server = OracleServer(catalog, port=0, cache_size=64)
            await server.start()
            try:
                shared = LoadgenReport()
                report = await run_loadgen(
                    server.host,
                    server.port,
                    pairs,
                    concurrency=1,
                    report=shared,
                )
                return report, shared
            finally:
                await server.shutdown()

        report, shared = asyncio.run(main())
        assert report is shared  # the caller's report object is used
        assert report.ok == 20
        assert report.cache_probed
        assert report.cache_misses == 1
        assert report.cache_hits == 19
        assert report.cache_hit_rate == pytest.approx(0.95)
        assert ["cache_hit_rate", 0.95] in report.rows()
        assert report.meta()["server_cache"]["hit_rate"] == pytest.approx(0.95)

    def test_probe_degrades_gracefully_without_cache(self, catalog):
        # A cache-less server never touches the cache counters; the
        # probe still runs and reports an idle 0/0 split (rate 0.0)
        # rather than failing.
        async def main():
            server = OracleServer(catalog, port=0)
            await server.start()
            try:
                return await run_loadgen(
                    server.host,
                    server.port,
                    [((0, 0), (1, 1))] * 4,
                    concurrency=1,
                )
            finally:
                await server.shutdown()

        report = asyncio.run(main())
        assert report.cache_probed
        assert report.cache_hits == 0
        assert report.cache_misses == 0
        assert report.cache_hit_rate == 0.0
