"""Sharded label stores: lookup, sharding stability, accounting."""

import pytest

from repro.serve.store import ShardedLabelStore, StoreCatalog, shard_key
from repro.util.errors import GraphError


@pytest.fixture
def store(remote_labels) -> ShardedLabelStore:
    return ShardedLabelStore.from_remote("grid", remote_labels, num_shards=4)


class TestShardedLabelStore:
    def test_every_label_lands_in_its_shard(self, store, remote_labels):
        for v in remote_labels.vertices():
            assert v in store
            assert store.label(v).vertex == v
            assert v in store.shards[store.shard_index(v)].labels

    def test_shard_counts_sum_to_total(self, store, remote_labels):
        assert store.num_labels == remote_labels.num_labels
        assert sum(s.num_labels for s in store.shards) == store.num_labels
        assert sum(s.words for s in store.shards) == store.total_words
        assert store.total_words == sum(
            label.words for label in remote_labels.labels.values()
        )

    def test_sharding_is_stable(self, store, remote_labels):
        # The shard function must not depend on Python's salted hash():
        # shard_key goes through the deterministic wire encoding.
        assert shard_key((0, 1)) == b'{"t":[0,1]}'
        rebuilt = ShardedLabelStore.from_remote("b", remote_labels, num_shards=4)
        for v in remote_labels.vertices():
            assert store.shard_index(v) == rebuilt.shard_index(v)

    def test_estimates_match_remote_labels_exactly(self, store, remote_labels):
        vertices = sorted(remote_labels.vertices())
        for u, v in zip(vertices, reversed(vertices)):
            assert store.estimate(u, v) == remote_labels.estimate(u, v)

    def test_unknown_vertex(self, store):
        with pytest.raises(GraphError, match="no label in store"):
            store.label((99, 99))
        assert (99, 99) not in store

    def test_single_shard_degenerates_to_flat_dict(self, remote_labels):
        store = ShardedLabelStore.from_remote("one", remote_labels, num_shards=1)
        assert store.num_labels == remote_labels.num_labels
        assert all(store.shard_index(v) == 0 for v in remote_labels.vertices())

    def test_invalid_shard_count(self, remote_labels):
        with pytest.raises(ValueError):
            ShardedLabelStore("x", 0.25, num_shards=0)

    def test_stats_shape(self, store):
        stats = store.stats()
        assert stats["labels"] == store.num_labels
        assert len(stats["shards"]) == 4
        assert sum(s["labels"] for s in stats["shards"]) == stats["labels"]

    def test_load_rejects_unknown_version(self, tmp_path):
        path = tmp_path / "future.json"
        path.write_text(
            '{"format": "repro-distance-labels/99", "epsilon": 0.1, "labels": []}'
        )
        from repro.core.serialize import SerializationError

        with pytest.raises(SerializationError, match="unsupported labels format"):
            ShardedLabelStore.load(path)


class TestStoreCatalog:
    def test_default_is_first(self, remote_labels):
        catalog = StoreCatalog()
        catalog.add(ShardedLabelStore.from_remote("a", remote_labels))
        catalog.add(ShardedLabelStore.from_remote("b", remote_labels))
        assert catalog.get(None).name == "a"
        assert catalog.get("b").name == "b"
        assert catalog.names == ["a", "b"]
        assert len(catalog) == 2
        assert catalog.num_labels == 2 * remote_labels.num_labels

    def test_name_collisions_disambiguated(self, remote_labels):
        catalog = StoreCatalog()
        catalog.add(ShardedLabelStore.from_remote("x", remote_labels))
        renamed = catalog.add(ShardedLabelStore.from_remote("x", remote_labels))
        assert renamed.name == "x.2"
        assert catalog.names == ["x", "x.2"]

    def test_unknown_store_raises_keyerror(self, remote_labels):
        catalog = StoreCatalog()
        with pytest.raises(KeyError):
            catalog.get(None)  # empty catalog has no default
        catalog.add(ShardedLabelStore.from_remote("a", remote_labels))
        with pytest.raises(KeyError):
            catalog.get("nope")
