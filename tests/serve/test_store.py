"""Sharded label stores: lookup, sharding stability, accounting."""

import pytest

from repro.core.labeling import VertexLabel
from repro.core.serialize import RemoteLabels, dump_labeling
from repro.serve.store import (
    MappedLabelStore,
    ShardedLabelStore,
    StoreCatalog,
    shard_key,
)
from repro.util.errors import GraphError


@pytest.fixture
def store(remote_labels) -> ShardedLabelStore:
    return ShardedLabelStore.from_remote("grid", remote_labels, num_shards=4)


class TestShardedLabelStore:
    def test_every_label_lands_in_its_shard(self, store, remote_labels):
        for v in remote_labels.vertices():
            assert v in store
            assert store.label(v).vertex == v
            assert v in store.shards[store.shard_index(v)].labels

    def test_shard_counts_sum_to_total(self, store, remote_labels):
        assert store.num_labels == remote_labels.num_labels
        assert sum(s.num_labels for s in store.shards) == store.num_labels
        assert sum(s.words for s in store.shards) == store.total_words
        assert store.total_words == sum(
            label.words for label in remote_labels.labels.values()
        )

    def test_sharding_is_stable(self, store, remote_labels):
        # The shard function must not depend on Python's salted hash():
        # shard_key goes through the deterministic wire encoding.
        assert shard_key((0, 1)) == b'{"t":[0,1]}'
        rebuilt = ShardedLabelStore.from_remote("b", remote_labels, num_shards=4)
        for v in remote_labels.vertices():
            assert store.shard_index(v) == rebuilt.shard_index(v)

    def test_estimates_match_remote_labels_exactly(self, store, remote_labels):
        vertices = sorted(remote_labels.vertices())
        for u, v in zip(vertices, reversed(vertices)):
            assert store.estimate(u, v) == remote_labels.estimate(u, v)

    def test_unknown_vertex(self, store):
        with pytest.raises(GraphError, match="no label in store"):
            store.label((99, 99))
        assert (99, 99) not in store

    def test_single_shard_degenerates_to_flat_dict(self, remote_labels):
        store = ShardedLabelStore.from_remote("one", remote_labels, num_shards=1)
        assert store.num_labels == remote_labels.num_labels
        assert all(store.shard_index(v) == 0 for v in remote_labels.vertices())

    def test_invalid_shard_count(self, remote_labels):
        with pytest.raises(ValueError):
            ShardedLabelStore("x", 0.25, num_shards=0)

    def test_stats_shape(self, store):
        stats = store.stats()
        assert stats["labels"] == store.num_labels
        assert len(stats["shards"]) == 4
        assert sum(s["labels"] for s in stats["shards"]) == stats["labels"]

    def test_load_rejects_unknown_version(self, tmp_path):
        path = tmp_path / "future.json"
        path.write_text(
            '{"format": "repro-distance-labels/99", "epsilon": 0.1, "labels": []}'
        )
        from repro.core.serialize import SerializationError

        with pytest.raises(SerializationError, match="unsupported labels format"):
            ShardedLabelStore.load(path)


class TestShardKeyCanonicalization:
    """Regression: ``shard_key(1) != shard_key(1.0)`` used to hold.

    ``1 == 1.0`` is one dict key, so a label stored under ``1.0`` and
    queried as ``1`` hit the right dict — in the wrong shard.  With 8
    shards the old encodings ``b"1"`` and ``b"1.0"`` routed to shards
    7 and 5: a cross-process split would answer "no label" for a
    vertex it holds.
    """

    def test_numeric_equals_share_one_key(self):
        assert shard_key(1) == shard_key(1.0)
        assert shard_key(-3) == shard_key(-3.0)
        assert shard_key((1, 2.0)) == shard_key((1.0, 2))
        assert shard_key(1) != shard_key(1.5)
        assert shard_key(1) != shard_key("1")

    @pytest.fixture
    def float_keyed_store(self):
        # Labels stored under float keys, exactly what a JSON dump of
        # float-vertex generators produces.
        remote = RemoteLabels(
            0.25,
            {
                float(v): VertexLabel(float(v), {(v, 0, 0): [(0.0, float(v))]})
                for v in range(8)
            },
        )
        return ShardedLabelStore.from_remote("f", remote, num_shards=8)

    def test_int_query_finds_float_stored_label(self, float_keyed_store):
        for v in range(8):
            assert float_keyed_store.shard_index(v) == (
                float_keyed_store.shard_index(float(v))
            )
            assert float_keyed_store.label(v).vertex == v
            assert v in float_keyed_store

    def test_mapped_store_agrees(self, float_keyed_store, tmp_path):
        remote = RemoteLabels(
            0.25,
            {
                float(v): VertexLabel(float(v), {(v, 0, 0): [(0.0, float(v))]})
                for v in range(8)
            },
        )
        path = tmp_path / "f.bin"
        dump_labeling(remote, path, codec="binary", num_shards=8)
        mapped = ShardedLabelStore.load(path)
        for v in range(8):
            assert mapped.shard_index(v) == float_keyed_store.shard_index(v)
            assert mapped.label(v).entries == float_keyed_store.label(v).entries


@pytest.fixture
def binary_path(remote_labels, tmp_path):
    path = tmp_path / "grid.bin"
    dump_labeling(remote_labels, path, codec="binary", num_shards=4)
    return path


class TestMappedLabelStore:
    def test_load_sniffs_binary_and_returns_mapped(self, binary_path):
        store = ShardedLabelStore.load(binary_path)
        assert isinstance(store, MappedLabelStore)
        assert store.codec == "binary"
        assert store.name == "grid"
        assert store.mapped_bytes == binary_path.stat().st_size

    def test_load_json_stays_eager(self, remote_labels, tmp_path):
        path = tmp_path / "grid.json"
        dump_labeling(remote_labels, path)
        store = ShardedLabelStore.load(path)
        assert isinstance(store, ShardedLabelStore)
        assert store.codec == "json" and store.mapped_bytes == 0

    def test_lookups_match_eager_store(self, remote_labels, binary_path):
        eager = ShardedLabelStore.from_remote("e", remote_labels, num_shards=4)
        mapped = MappedLabelStore(binary_path)
        vertices = sorted(remote_labels.vertices())
        for v in vertices:
            assert v in mapped
            assert mapped.label(v).entries == eager.label(v).entries
            assert mapped.shard_index(v) == eager.shard_index(v)
        for u, v in zip(vertices, reversed(vertices)):
            assert mapped.estimate(u, v) == eager.estimate(u, v)

    def test_unknown_vertex(self, binary_path):
        mapped = MappedLabelStore(binary_path)
        with pytest.raises(GraphError, match="no label in store"):
            mapped.label((99, 99))
        assert (99, 99) not in mapped

    def test_accounting_matches_eager_store(self, remote_labels, binary_path):
        eager = ShardedLabelStore.from_remote("e", remote_labels, num_shards=4)
        mapped = MappedLabelStore(binary_path)
        assert mapped.num_labels == eager.num_labels
        assert mapped.total_words == eager.total_words
        assert mapped.num_shards == eager.num_shards == 4
        assert [s.num_labels for s in mapped.shards] == [
            s.num_labels for s in eager.shards
        ]
        assert [s.words for s in mapped.shards] == [
            s.words for s in eager.shards
        ]

    def test_stats_shape(self, binary_path, remote_labels):
        stats = MappedLabelStore(binary_path).stats()
        assert stats["codec"] == "binary"
        assert stats["mapped_bytes"] == binary_path.stat().st_size
        assert stats["cached_labels"] == 0
        assert stats["labels"] == remote_labels.num_labels
        assert sum(s["labels"] for s in stats["shards"]) == stats["labels"]

    def test_vertices_iterates_source_order(self, remote_labels, binary_path):
        mapped = MappedLabelStore(binary_path)
        assert list(mapped.vertices()) == list(remote_labels.labels)

    def test_label_cache_is_bounded_lru(self, binary_path, remote_labels):
        mapped = MappedLabelStore(binary_path, label_cache=2)
        vertices = sorted(remote_labels.vertices())[:5]
        for v in vertices:
            mapped.label(v)
            assert mapped.cached_labels <= 2
        # Hot entry survives: re-reading the most recent two is cached.
        hot = mapped.label(vertices[-1])
        assert mapped.label(vertices[-1]) is hot

    def test_zero_cache_decodes_every_time(self, binary_path, remote_labels):
        mapped = MappedLabelStore(binary_path, label_cache=0)
        v = next(iter(remote_labels.vertices()))
        a, b = mapped.label(v), mapped.label(v)
        assert a == b and a is not b
        assert mapped.cached_labels == 0

    def test_close_releases_the_map(self, binary_path):
        mapped = MappedLabelStore(binary_path)
        mapped.label(next(iter(mapped.vertices())))
        mapped.close()
        assert mapped.cached_labels == 0

    def test_catalog_mixes_codecs(self, remote_labels, binary_path, tmp_path):
        json_path = tmp_path / "grid.json"
        dump_labeling(remote_labels, json_path)
        catalog = StoreCatalog()
        catalog.add(ShardedLabelStore.load(json_path))
        catalog.add(ShardedLabelStore.load(binary_path))
        assert catalog.get("grid").codec == "json"
        assert catalog.get("grid.2").codec == "binary"
        assert catalog.num_labels == 2 * remote_labels.num_labels


class TestStoreCatalog:
    def test_default_is_first(self, remote_labels):
        catalog = StoreCatalog()
        catalog.add(ShardedLabelStore.from_remote("a", remote_labels))
        catalog.add(ShardedLabelStore.from_remote("b", remote_labels))
        assert catalog.get(None).name == "a"
        assert catalog.get("b").name == "b"
        assert catalog.names == ["a", "b"]
        assert len(catalog) == 2
        assert catalog.num_labels == 2 * remote_labels.num_labels

    def test_name_collisions_disambiguated(self, remote_labels):
        catalog = StoreCatalog()
        catalog.add(ShardedLabelStore.from_remote("x", remote_labels))
        renamed = catalog.add(ShardedLabelStore.from_remote("x", remote_labels))
        assert renamed.name == "x.2"
        assert catalog.names == ["x", "x.2"]

    def test_unknown_store_raises_keyerror(self, remote_labels):
        catalog = StoreCatalog()
        with pytest.raises(KeyError):
            catalog.get(None)  # empty catalog has no default
        catalog.add(ShardedLabelStore.from_remote("a", remote_labels))
        with pytest.raises(KeyError):
            catalog.get("nope")


class TestMappedLabelCache:
    """The decode LRU: occupancy accounting, eviction order, and the
    invariant that caching never changes an answer."""

    def test_cached_labels_tracks_occupancy_up_to_capacity(
        self, remote_labels, binary_path
    ):
        mapped = MappedLabelStore(binary_path, label_cache=4)
        ordered = sorted(remote_labels.vertices(), key=repr)
        assert mapped.cached_labels == 0
        mapped.label(ordered[0])
        assert mapped.cached_labels == 1
        for v in ordered[:10]:
            mapped.label(v)
        assert mapped.cached_labels == 4  # capacity is a hard ceiling
        assert mapped.stats()["cached_labels"] == 4

    def test_eviction_is_lru_not_fifo(self, remote_labels, binary_path):
        mapped = MappedLabelStore(binary_path, label_cache=3)
        a, b, c, d = sorted(remote_labels.vertices(), key=repr)[:4]
        first_a = mapped.label(a)
        first_b = mapped.label(b)
        mapped.label(c)
        # Touch a: under LRU the eviction victim is now b; under FIFO
        # it would still be a.
        assert mapped.label(a) is first_a
        mapped.label(d)
        assert mapped.label(a) is first_a      # still cached
        assert mapped.label(b) is not first_b  # b was evicted, re-decoded
        assert mapped.cached_labels == 3

    def test_hits_return_the_cached_object(self, remote_labels, binary_path):
        mapped = MappedLabelStore(binary_path, label_cache=8)
        v = next(iter(remote_labels.vertices()))
        assert mapped.label(v) is mapped.label(v)
        # A zero-capacity cache decodes every time and stays empty.
        off = MappedLabelStore(binary_path, label_cache=0)
        assert off.label(v) is not off.label(v)
        assert off.cached_labels == 0

    def test_answers_identical_across_eviction_churn(
        self, remote_labels, binary_path
    ):
        # A cache of 2 with two-vertex queries evicts constantly; the
        # estimates must match the offline labeling byte-for-byte
        # anyway, before and after any given eviction.
        churn = MappedLabelStore(binary_path, label_cache=2)
        ordered = sorted(remote_labels.vertices(), key=repr)
        pairs = [(u, v) for u in ordered[:6] for v in ordered[6:12]]
        for u, v in pairs + list(reversed(pairs)):
            assert churn.estimate(u, v) == remote_labels.estimate(u, v)
        assert churn.cached_labels == 2
