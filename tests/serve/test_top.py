"""render_top / split_metric_key: pure snapshot-to-text rendering."""

from repro.serve.top import render_top, split_metric_key


def snapshot(**over):
    base = {
        "op": "METRICS",
        "ok": True,
        "uptime_s": 12.5,
        "rss_bytes": 32 * 1024 * 1024,
        "inflight": 1,
        "peak_inflight": 4,
        "connections": 2,
        "draining": False,
        "cache": {"size": 10, "capacity": 64, "hits": 5, "misses": 15},
        "counters": {
            "requests": 100,
            "errors": 2,
            "cache_hits": 5,
            "cache_misses": 15,
        },
        "shards": {"grid": [6, 7, 6, 6]},
        "faults": {"enabled": False, "decisions": 0, "injected": {}},
        "metrics_enabled": False,
    }
    base.update(over)
    return base


class TestSplitMetricKey:
    def test_plain_name(self):
        assert split_metric_key("serve.inflight") == ("serve.inflight", {})

    def test_labels_parsed(self):
        name, labels = split_metric_key("serve.latency_ns{op=DIST,store=grid}")
        assert name == "serve.latency_ns"
        assert labels == {"op": "DIST", "store": "grid"}


class TestRenderTop:
    def test_first_frame_totals_without_rates(self):
        text = render_top(snapshot())
        assert "serving" in text
        assert "rss 32.0MB" in text
        assert "inflight 1/4 peak" in text
        assert "requests" in text and "100" in text
        # No previous frame: rates render as "-".
        assert "-" in text
        assert "cache hit rate" in text and "25.0%" in text

    def test_rates_from_deltas(self):
        prev = snapshot()
        cur = snapshot(
            counters={
                "requests": 150,
                "errors": 2,
                "cache_hits": 30,
                "cache_misses": 20,
            }
        )
        text = render_top(cur, prev, dt=2.0)
        assert "25.0" in text  # 50 requests / 2s
        # Hit rate over the interval: 25 hits of 30 lookups.
        assert "83.3%" in text

    def test_per_op_table_needs_registry(self):
        text = render_top(snapshot())
        assert "--metrics" in text  # the hint, not the table
        registry = {
            "counters": {"serve.requests{op=DIST}": 90},
            "gauges": {},
            "histograms": {
                "serve.latency_ns{op=DIST}": {
                    "count": 90,
                    "p50": 5e5,
                    "p90": 2e6,
                    "p99": 9e6,
                }
            },
        }
        text = render_top(snapshot(metrics=registry, metrics_enabled=True))
        assert "per-op latency" in text
        assert "DIST" in text
        assert "0.500" in text and "2.000" in text and "9.000" in text

    def test_shard_rows_show_labels_and_queries(self):
        registry = {
            "counters": {
                "serve.shard.queries{shard=0,store=grid}": 40,
                "serve.shard.queries{shard=1,store=grid}": 10,
            },
            "gauges": {},
            "histograms": {},
        }
        text = render_top(snapshot(metrics=registry, metrics_enabled=True))
        assert "per-shard load" in text
        assert "40" in text and "10" in text

    def test_fault_and_breaker_lines(self):
        cur = snapshot(
            faults={"enabled": True, "decisions": 7, "injected": {"drop": 3}},
            draining=True,
        )
        text = render_top(
            cur,
            breakers={"127.0.0.1:7471": {"state": "open", "opened_total": 2}},
        )
        assert "draining" in text
        assert "faults: ACTIVE" in text and "drop=3" in text
        assert "client breakers" in text and "open" in text
