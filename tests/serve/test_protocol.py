"""Protocol parsing and rendering, transport-free."""

import json
import math

import pytest

from repro.serve.protocol import (
    ERROR_CODES,
    OPS,
    ProtocolError,
    encode_response,
    error_response,
    estimate_field,
    ok_response,
    parse_request,
    wire_pair,
)


def _err(raw) -> ProtocolError:
    with pytest.raises(ProtocolError) as info:
        parse_request(raw)
    return info.value


class TestParseRequest:
    def test_dist(self):
        req = parse_request('{"id": 7, "op": "DIST", "u": 0, "v": 41}')
        assert (req.op, req.id, req.u, req.v) == ("DIST", 7, 0, 41)
        assert req.store is None

    def test_dist_tuple_vertices(self):
        line = json.dumps(
            {"op": "DIST", "u": {"t": [0, 0]}, "v": {"t": [4, 4]}}
        )
        req = parse_request(line)
        assert req.u == (0, 0) and req.v == (4, 4)

    def test_op_case_insensitive(self):
        assert parse_request('{"op": "dist", "u": 1, "v": 2}').op == "DIST"

    def test_batch(self):
        req = parse_request('{"op": "BATCH", "pairs": [[1, 2], [3, 4]]}')
        assert req.pairs == [(1, 2), (3, 4)]

    def test_label_health_stats(self):
        assert parse_request('{"op": "LABEL", "v": 9}').v == 9
        for op in ("HEALTH", "STATS"):
            assert parse_request(json.dumps({"op": op})).op == op

    def test_store_field(self):
        req = parse_request('{"op": "HEALTH", "store": "east"}')
        assert req.store == "east"

    def test_bytes_input(self):
        assert parse_request(b'{"op": "HEALTH"}').op == "HEALTH"


class TestParseErrors:
    @pytest.mark.parametrize(
        "raw",
        [
            "not json",
            "[1, 2]",
            '"a string"',
            '{"op": 5}',
            "{}",
            '{"op": "DIST", "u": 1}',           # missing v
            '{"op": "DIST", "u": true, "v": 2}',  # bool is not a vertex
            '{"op": "BATCH"}',
            '{"op": "BATCH", "pairs": [[1]]}',
            '{"op": "BATCH", "pairs": "zz"}',
            '{"op": "LABEL"}',
            '{"op": "HEALTH", "store": 3}',
        ],
    )
    def test_bad_request(self, raw):
        assert _err(raw).code == "bad_request"

    def test_unknown_op(self):
        exc = _err('{"id": 9, "op": "EXPLODE"}')
        assert exc.code == "unknown_op"
        assert exc.req_id == 9  # id survives even a rejected request

    def test_non_utf8(self):
        assert _err(b"\xff\xfe{}").code == "bad_request"

    def test_all_codes_declared(self):
        for code in ("bad_request", "unknown_op", "timeout", "unavailable"):
            assert code in ERROR_CODES
        # DIST/BATCH/LABEL/HEALTH/STATS/METRICS/FAULT + MAP + DELTA
        assert len(OPS) == 9


class TestResponses:
    def test_ok_and_error_shapes(self):
        ok = ok_response(3, {"op": "HEALTH", "status": "serving"})
        assert ok == {"id": 3, "ok": True, "op": "HEALTH", "status": "serving"}
        err = error_response(3, "timeout", "too slow")
        assert err["ok"] is False
        assert err["error"] == {"code": "timeout", "message": "too slow"}

    def test_encode_is_one_strict_json_line(self):
        data = encode_response(ok_response(1, estimate_field(4.0)))
        assert data.endswith(b"\n") and data.count(b"\n") == 1
        assert json.loads(data) == {"id": 1, "ok": True, "estimate": 4.0}

    def test_identical_responses_are_byte_identical(self):
        a = encode_response(ok_response(1, estimate_field(1.5)))
        b = encode_response(ok_response(1, estimate_field(1.5)))
        assert a == b

    def test_unreachable_estimate_stays_strict_json(self):
        field = estimate_field(float("inf"))
        assert field == {"estimate": None, "unreachable": True}
        json.loads(encode_response(ok_response(None, field)))  # no raise

    def test_nan_never_leaks(self):
        with pytest.raises(ValueError):
            encode_response({"estimate": math.nan})

    def test_wire_pair_round_trips(self):
        line = json.dumps({"op": "BATCH", "pairs": [wire_pair((0, 1), (2, 3))]})
        assert parse_request(line).pairs == [((0, 1), (2, 3))]
