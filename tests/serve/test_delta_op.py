"""The DELTA admin op end-to-end: epoch-gated label updates over TCP.

A running server must (a) apply a well-formed next-epoch delta and
answer subsequent queries from the *new* labels byte-exactly, (b) treat
an already-applied epoch as an idempotent noop, (c) reject an epoch gap
with the permanent ``stale_delta`` error, (d) reject malformed payloads
as ``bad_request``, and (e) drop any cached pair answers that predate
the delta.
"""

import asyncio
import json
import random

import pytest

from repro.core import build_decomposition, build_labeling
from repro.core.serialize import dump_labeling, load_labeling
from repro.dynamic import incremental_relabel
from repro.dynamic.rebuild import delta_to_dict
from repro.generators import grid_2d
from repro.serve import OracleServer, ShardedLabelStore, StoreCatalog

from tests.dynamic.test_rebuild import random_reweight
from tests.serve.conftest import rpc
from tests.serve.test_server import wire


def run(coro):
    return asyncio.run(coro)


def make_world(updates=2, seed=37):
    """A catalog serving pristine labels + deltas that update them."""
    graph = grid_2d(5, weight_range=(1.0, 5.0), seed=4)
    tree = build_decomposition(graph)
    labeling = build_labeling(graph, tree, epsilon=0.25)
    # Deep snapshot: incremental_relabel mutates VertexLabel objects in
    # place, so the store must hold its own copies of the pristine ones.
    pristine = load_labeling(dump_labeling(labeling))
    catalog = StoreCatalog()
    catalog.add(ShardedLabelStore.from_remote("grid", pristine, num_shards=4))
    rng = random.Random(seed)
    deltas = []
    for epoch in range(1, updates + 1):
        delta = incremental_relabel(labeling, random_reweight(rng, graph))
        delta.epoch = epoch
        deltas.append(delta)
    return catalog, labeling, deltas


def apply_request(delta, request_id=0):
    return {
        "id": request_id,
        "op": "DELTA",
        "action": "apply",
        "delta": delta_to_dict(delta),
    }


async def _started(catalog, **kwargs) -> OracleServer:
    server = OracleServer(catalog, port=0, **kwargs)
    await server.start()
    return server


class TestDeltaApply:
    def test_queries_switch_to_the_new_labels(self):
        catalog, updated, deltas = make_world(updates=2)
        pairs = [((0, 0), (4, 4)), ((1, 3), (3, 1)), ((0, 2), (4, 2))]
        changed = {vx for d in deltas for vx, _k, _p in d.changes}
        changed.update(vx for d in deltas for vx, _k in d.removals)
        if not changed:
            pytest.skip("deltas touched no labels")
        moved = sorted(changed)[0]

        async def main():
            server = await _started(catalog)
            queries = [
                {"id": i, "op": "DIST", "u": wire(u), "v": wire(v)}
                for i, (u, v) in enumerate(pairs)
            ] + [{"op": "LABEL", "v": wire(moved)}]
            before = await rpc(server.port, queries)
            applies = await rpc(
                server.port,
                [apply_request(d, i) for i, d in enumerate(deltas)],
            )
            after = await rpc(server.port, queries)
            status = await rpc(server.port, [{"op": "DELTA"}])
            await server.shutdown()
            return before, applies, after, status

        before, applies, after, status = run(main())
        for line, delta in zip(applies, deltas):
            response = json.loads(line)
            assert response["ok"] and response["applied"]
            assert response["epoch"] == delta.epoch
        served = [json.loads(line)["estimate"] for line in after[:-1]]
        expected = [updated.estimate(u, v) for u, v in pairs]
        assert served == expected
        # A vertex the deltas touched serves a different label now.
        assert json.loads(after[-1]) != json.loads(before[-1])
        stat = json.loads(status[0])
        assert stat["ok"] and stat["epoch"] == len(deltas)
        assert stat["applied_deltas"] == len(deltas)

    def test_replayed_epoch_is_an_idempotent_noop(self):
        catalog, _, deltas = make_world(updates=1)

        async def main():
            server = await _started(catalog)
            lines = await rpc(
                server.port,
                [apply_request(deltas[0], 0), apply_request(deltas[0], 1)],
            )
            await server.shutdown()
            return lines

        first, second = (json.loads(line) for line in run(main()))
        assert first["applied"] is True
        assert second["ok"] is True
        assert second["applied"] is False and second["noop"] is True
        assert second["epoch"] == 1

    def test_epoch_gap_is_stale_delta(self):
        catalog, _, deltas = make_world(updates=2)

        async def main():
            server = await _started(catalog)
            (line,) = await rpc(server.port, [apply_request(deltas[1])])
            await server.shutdown()
            return line

        response = json.loads(run(main()))
        assert response["ok"] is False
        assert response["error"]["code"] == "stale_delta"

    def test_malformed_delta_is_bad_request(self):
        catalog, _, deltas = make_world(updates=1)
        payload = delta_to_dict(deltas[0])
        payload.pop("changes")

        async def main():
            server = await _started(catalog)
            lines = await rpc(
                server.port,
                [
                    {"op": "DELTA", "action": "apply", "delta": payload},
                    {"op": "DELTA", "action": "apply"},  # no delta at all
                    {"op": "DELTA", "action": "explode"},
                ],
            )
            await server.shutdown()
            return lines

        for line in run(main()):
            response = json.loads(line)
            assert response["ok"] is False
            assert response["error"]["code"] == "bad_request"

    def test_pair_cache_is_cleared_on_apply(self):
        catalog, updated, deltas = make_world(updates=1)
        changed = {vx for vx, _k, _p in deltas[0].changes}
        changed.update(vx for vx, _k in deltas[0].removals)
        if not changed:
            pytest.skip("delta touched no labels")
        probe = sorted(changed)[0]
        other = (4, 4) if probe != (4, 4) else (0, 0)

        async def main():
            server = await _started(catalog, cache_size=128)
            query = {"op": "DIST", "u": wire(probe), "v": wire(other)}
            await rpc(server.port, [query, query])  # warm the cache
            await rpc(server.port, [apply_request(deltas[0])])
            (line,) = await rpc(server.port, [query])
            stats = await rpc(server.port, [{"op": "STATS"}])
            await server.shutdown()
            return line, stats

        line, stats = run(main())
        assert json.loads(line)["estimate"] == updated.estimate(probe, other)
        counters = json.loads(stats[0])["counters"]
        assert counters["deltas"] == 1
