"""The repro-querytrace/1 format: exact record/replay of query pairs."""

import json

import pytest

from repro.serve.querytrace import (
    TRACE_FORMAT,
    TraceError,
    read_trace,
    write_trace,
)


@pytest.fixture
def trace_path(tmp_path):
    return tmp_path / "trace.jsonl"


PAIRS = [
    (3, 17),
    ("left", "right"),
    ((0, 1), (4, 4)),       # tuple vertices: the tagged encoding
    (1.5, 2),
]


class TestRoundTrip:
    def test_pairs_round_trip_exactly(self, trace_path):
        assert write_trace(trace_path, PAIRS) == len(PAIRS)
        assert read_trace(trace_path) == PAIRS

    def test_header_carries_format_count_and_meta(self, trace_path):
        write_trace(trace_path, PAIRS, meta={"seed": 7, "zipf": 1.1})
        header = json.loads(trace_path.read_text().splitlines()[0])
        assert header["format"] == TRACE_FORMAT
        assert header["count"] == len(PAIRS)
        assert header["seed"] == 7 and header["zipf"] == 1.1

    def test_empty_trace_round_trips(self, trace_path):
        write_trace(trace_path, [])
        assert read_trace(trace_path) == []

    def test_meta_may_not_shadow_the_envelope(self, trace_path):
        with pytest.raises(TraceError):
            write_trace(trace_path, PAIRS, meta={"count": 3})


class TestStrictLoading:
    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceError):
            read_trace(tmp_path / "absent.jsonl")

    def test_empty_file(self, trace_path):
        trace_path.write_text("")
        with pytest.raises(TraceError):
            read_trace(trace_path)

    def test_wrong_format_tag(self, trace_path):
        trace_path.write_text('{"format": "something-else/9", "count": 0}\n')
        with pytest.raises(TraceError):
            read_trace(trace_path)

    def test_count_mismatch_is_an_error(self, trace_path):
        write_trace(trace_path, PAIRS)
        lines = trace_path.read_text().splitlines()
        trace_path.write_text("\n".join(lines[:-1]) + "\n")
        with pytest.raises(TraceError):
            read_trace(trace_path)

    def test_malformed_record(self, trace_path):
        write_trace(trace_path, [(1, 2)])
        trace_path.write_text(
            trace_path.read_text().replace("[1, 2]", "[1, 2, 3]")
        )
        with pytest.raises(TraceError):
            read_trace(trace_path)

    def test_unencodable_vertex_payload(self, trace_path):
        trace_path.write_text(
            json.dumps({"format": TRACE_FORMAT, "count": 1})
            + "\n[true, 2]\n"
        )
        with pytest.raises(TraceError):
            read_trace(trace_path)
