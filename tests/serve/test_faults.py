"""Fault plans, the injector's dice, and the FAULT admin op live."""

import asyncio
import json

import pytest

from repro.serve import OracleServer
from repro.serve.faults import (
    FAULT_KINDS,
    FaultDecision,
    FaultInjector,
    FaultPlan,
    FaultPlanError,
    FaultRule,
)

from tests.serve.conftest import rpc


def run(coro):
    return asyncio.run(coro)


class TestPlanValidation:
    def test_minimal_plan(self):
        plan = FaultPlan.from_rules([{"kind": "drop", "rate": 0.5}], seed=9)
        assert plan.seed == 9
        assert len(plan.stages) == 1
        assert plan.stages[0].rules[0].kind == "drop"

    @pytest.mark.parametrize(
        "payload, fragment",
        [
            ([1, 2], "must be an object"),
            ({"format": "repro-fault-plan/9", "rules": []},
             "unsupported fault-plan format"),
            ({"rules": [{"kind": "meteor", "rate": 0.1}]}, "unknown fault kind"),
            ({"rules": [{"kind": "drop", "rate": 1.5}]}, "must be in [0, 1]"),
            ({"rules": [{"kind": "drop", "rate": -0.1}]}, "must be >="),
            ({"rules": [{"kind": "drop", "rate": "lots"}]}, "must be a number"),
            ({"rules": [{"kind": "drop", "rate": 0.1, "ops": ["FAULT"]}]},
             "cannot be faulted"),
            ({"rules": [{"kind": "delay", "rate": 1, "distribution": "zipf"}]},
             "unknown delay distribution"),
            ({"rules": [{"kind": "corrupt", "rate": 1, "mode": "melt"}]},
             "unknown corrupt mode"),
            ({"rules": [{"kind": "drop", "rate": 0.1}], "stages": []},
             "not both"),
            ({"stages": [{"rules": []}]}, "non-empty 'rules'"),
            ({"stages": [{"rules": [{"kind": "drop", "rate": 1}],
                          "requests": 0}]}, "must be >= 1"),
            ({"seed": "seven", "rules": [{"kind": "drop", "rate": 1}]},
             "'seed' must be an int"),
            ({}, "needs 'rules' or 'stages'"),
        ],
    )
    def test_rejects(self, payload, fragment):
        with pytest.raises(FaultPlanError, match=None) as info:
            FaultPlan.from_dict(payload)
        assert fragment in str(info.value)

    def test_load_round_trips(self, tmp_path):
        path = tmp_path / "plan.json"
        original = FaultPlan.from_dict(
            {
                "seed": 3,
                "stages": [
                    {"requests": 10,
                     "rules": [{"kind": "delay", "rate": 1.0, "delay_ms": 5}]},
                    {"rules": [{"kind": "drop", "rate": 0.2}]},
                ],
            }
        )
        path.write_text(json.dumps(original.to_dict()))
        assert FaultPlan.load(path) == original

    def test_load_errors_are_typed(self, tmp_path):
        with pytest.raises(FaultPlanError, match="cannot read"):
            FaultPlan.load(tmp_path / "nope.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(FaultPlanError, match="not valid JSON"):
            FaultPlan.load(bad)

    def test_every_kind_parses(self):
        rules = [{"kind": kind, "rate": 0.5} for kind in FAULT_KINDS]
        plan = FaultPlan.from_rules(rules)
        assert [r.kind for r in plan.stages[0].rules] == list(FAULT_KINDS)


class TestInjectorDeterminism:
    def _decisions(self, seed, count=50):
        plan = FaultPlan.from_rules(
            [{"kind": "drop", "rate": 0.3},
             {"kind": "delay", "rate": 0.5, "delay_ms": 10, "jitter_ms": 5,
              "distribution": "uniform"}],
            seed=seed,
        )
        injector = FaultInjector(plan)
        out = []
        for _ in range(count):
            d = injector.decide("DIST")
            out.append((d.drop, d.delay_s) if d else None)
        return out

    def test_same_seed_same_schedule(self):
        assert self._decisions(7) == self._decisions(7)

    def test_different_seed_different_schedule(self):
        assert self._decisions(7) != self._decisions(8)

    def test_rate_zero_never_fires_rate_one_always(self):
        plan = FaultPlan.from_rules(
            [{"kind": "drop", "rate": 0.0}, {"kind": "unavailable", "rate": 1.0}]
        )
        injector = FaultInjector(plan)
        for _ in range(20):
            d = injector.decide("DIST")
            assert d is not None and d.unavailable and not d.drop
        assert injector.injected == {"unavailable": 20}

    def test_ops_filter(self):
        plan = FaultPlan.from_rules(
            [{"kind": "drop", "rate": 1.0, "ops": ["DIST"]}]
        )
        injector = FaultInjector(plan)
        assert injector.decide("DIST").drop
        assert injector.decide("HEALTH") is None
        # The FAULT admin op is never faulted, even with no ops filter.
        assert FaultInjector(
            FaultPlan.from_rules([{"kind": "drop", "rate": 1.0}])
        ).decide("FAULT") is None

    def test_stage_advancement_by_request_count(self):
        plan = FaultPlan.from_dict(
            {
                "stages": [
                    {"requests": 5, "rules": [{"kind": "drop", "rate": 1.0}]},
                    {"rules": [{"kind": "unavailable", "rate": 1.0}]},
                ]
            }
        )
        assert plan.stage_for(0) == (0, plan.stages[0])
        assert plan.stage_for(4) == (0, plan.stages[0])
        assert plan.stage_for(5) == (1, plan.stages[1])
        assert plan.stage_for(10_000) == (1, plan.stages[1])
        injector = FaultInjector(plan)
        kinds = []
        for _ in range(8):
            d = injector.decide("DIST")
            kinds.append("drop" if d.drop else "unavailable")
        assert kinds == ["drop"] * 5 + ["unavailable"] * 3
        assert injector.status()["stage"] == 1

    def test_toggle_lifecycle(self):
        injector = FaultInjector()
        assert not injector.active
        assert injector.decide("DIST") is None
        with pytest.raises(FaultPlanError, match="no fault plan"):
            injector.enable()
        plan = FaultPlan.from_rules([{"kind": "drop", "rate": 1.0}])
        injector.set_plan(plan)
        assert injector.active and injector.decide("DIST").drop
        injector.disable()
        assert injector.decide("DIST") is None
        injector.enable()
        assert injector.decide("DIST").drop
        injector.clear()
        assert injector.plan is None and not injector.active
        status = injector.status()
        assert status["plan"] is None and status["enabled"] is False
        json.dumps(status)  # always JSON-safe


class TestCorruptionIsDetectable:
    def _decision(self, mode, position):
        d = FaultDecision()
        d.corrupt = (mode, position)
        return d

    @pytest.mark.parametrize("position", [0.0, 0.3, 0.7, 0.999])
    def test_truncate_always_loses_the_newline(self, position):
        data = b'{"id": 1, "ok": true, "estimate": 4.5}\n'
        out = self._decision("truncate", position).apply_to_bytes(data)
        assert 0 < len(out) < len(data)
        assert not out.endswith(b"\n")

    @pytest.mark.parametrize("position", [0.0, 0.5, 0.999])
    def test_garble_never_decodes(self, position):
        data = b'{"id": 1, "ok": true, "estimate": 4.5}\n'
        out = self._decision("garble", position).apply_to_bytes(data)
        assert len(out) == len(data)
        with pytest.raises(UnicodeDecodeError):
            out.decode("utf-8")


class TestFaultOpLive:
    """The FAULT admin op against a real server."""

    async def _started(self, catalog, **kwargs):
        server = OracleServer(catalog, port=0, **kwargs)
        await server.start()
        return server

    def test_set_enable_disable_round_trip(self, catalog):
        async def main():
            server = await self._started(catalog)
            plan = {"format": "repro-fault-plan/1", "seed": 1,
                    "rules": [{"kind": "drop", "rate": 1.0, "ops": ["DIST"]}]}
            lines = await rpc(
                server.port,
                [
                    {"id": 1, "op": "FAULT"},  # default action: status
                    {"id": 2, "op": "FAULT", "action": "set", "plan": plan},
                    {"id": 3, "op": "HEALTH"},  # HEALTH is not in ops -> clean
                    {"id": 4, "op": "FAULT", "action": "disable"},
                    {"id": 5, "op": "FAULT", "action": "status"},
                ],
            )
            # With the plan disabled again, DIST flows normally.
            extra = await rpc(
                server.port,
                [{"id": 6, "op": "DIST", "u": {"t": [0, 0]}, "v": {"t": [1, 1]}}],
            )
            await server.shutdown()
            return [json.loads(line) for line in lines + extra]

        st0, set_resp, health, disable, st1, dist = run(main())
        assert st0["ok"] and st0["enabled"] is False and st0["plan"] is None
        assert set_resp["ok"] and set_resp["enabled"] is True
        assert set_resp["plan"]["rules"][0]["kind"] == "drop"
        assert health["ok"] and health["status"] == "serving"
        assert disable["ok"] and disable["enabled"] is False
        assert st1["enabled"] is False
        assert dist["ok"] and isinstance(dist["estimate"], float)

    def test_armed_plan_drops_targeted_op_only(self, catalog):
        async def main():
            plan = FaultPlan.from_rules(
                [{"kind": "drop", "rate": 1.0, "ops": ["DIST"]}]
            )
            server = await self._started(catalog, fault_plan=plan)
            # HEALTH sails through while every DIST reply is swallowed.
            (health,) = await rpc(server.port, [{"id": 1, "op": "HEALTH"}])
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            writer.write(
                json.dumps(
                    {"id": 2, "op": "DIST", "u": {"t": [0, 0]},
                     "v": {"t": [1, 1]}}
                ).encode() + b"\n"
            )
            await writer.drain()
            with pytest.raises(asyncio.TimeoutError):
                await asyncio.wait_for(reader.readline(), 0.4)
            writer.close()
            await writer.wait_closed()
            status = server.faults.status()
            await server.shutdown()
            return json.loads(health), status

        health, status = run(main())
        assert health["ok"]
        assert status["injected"].get("drop", 0) >= 1

    def test_fault_admin_rejects_garbage(self, catalog):
        async def main():
            server = await self._started(catalog)
            lines = await rpc(
                server.port,
                [
                    {"id": 1, "op": "FAULT", "action": "explode"},
                    {"id": 2, "op": "FAULT", "action": "set"},  # no plan
                    {"id": 3, "op": "FAULT", "action": "set",
                     "plan": {"rules": [{"kind": "meteor", "rate": 1}]}},
                    {"id": 4, "op": "FAULT", "action": "enable"},  # none set
                ],
            )
            await server.shutdown()
            return [json.loads(line) for line in lines]

        responses = run(main())
        for response in responses:
            assert response["ok"] is False
            assert response["error"]["code"] == "bad_request"
        # The connection survived all four rejections (ids echo back).
        assert [r["id"] for r in responses] == [1, 2, 3, 4]

    def test_stats_includes_fault_block(self, catalog):
        async def main():
            plan = FaultPlan.from_rules([{"kind": "delay", "rate": 0.0}])
            server = await self._started(catalog, fault_plan=plan)
            (line,) = await rpc(server.port, [{"id": 1, "op": "STATS"}])
            await server.shutdown()
            return json.loads(line)

        stats = run(main())
        assert stats["ok"]
        assert stats["faults"]["enabled"] is True
        assert stats["faults"]["plan"]["rules"][0]["kind"] == "delay"
