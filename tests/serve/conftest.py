"""Shared serve-layer fixtures: one small labeling, loaded like a
client would (dump -> load round trip, so vertices are exactly what
the wire produces)."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.core import build_decomposition, build_labeling
from repro.core.serialize import RemoteLabels, dump_labeling, load_labeling
from repro.generators import grid_2d
from repro.serve import ShardedLabelStore, StoreCatalog


@pytest.fixture(scope="session")
def remote_labels() -> RemoteLabels:
    graph = grid_2d(5)  # tuple vertices: exercises the tagged encoding
    labeling = build_labeling(graph, build_decomposition(graph), epsilon=0.25)
    return load_labeling(dump_labeling(labeling))


@pytest.fixture
def catalog(remote_labels) -> StoreCatalog:
    catalog = StoreCatalog()
    catalog.add(ShardedLabelStore.from_remote("grid", remote_labels, num_shards=4))
    return catalog


async def rpc(port, requests, host="127.0.0.1"):
    """Send request lines on one connection; return raw response lines.

    Each request is a dict (JSON-encoded here) or raw bytes (sent
    verbatim, for malformed-input tests).
    """
    reader, writer = await asyncio.open_connection(host, port)
    responses = []
    try:
        for request in requests:
            if isinstance(request, (bytes, bytearray)):
                writer.write(bytes(request))
            else:
                writer.write(json.dumps(request).encode("utf-8") + b"\n")
            await writer.drain()
            responses.append(await asyncio.wait_for(reader.readline(), 10))
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    return responses
