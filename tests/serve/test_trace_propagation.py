"""End-to-end tracing across the wire: client spans, server spans, one
tree — plus hedge tagging, fault-plan survival, deterministic ids, the
METRICS op, and the loadgen SLO report.

These are the observability acceptance tests: everything here runs a
real OracleServer on an ephemeral port and a real ResilientClient, with
span collection active, exactly like ``repro serve --trace-out`` +
``repro loadgen --trace-out`` + ``repro trace``.
"""

import asyncio
import json

from repro.obs import CollectingSink, use_sink
from repro.obs.traceview import assemble_traces, cross_process, read_span_files
from repro.obs.tracing import JsonlSpanSink
from repro.serve import (
    FaultPlan,
    OracleServer,
    ResilientClient,
    RetryPolicy,
    run_loadgen,
)

from tests.serve.conftest import rpc


def run(coro):
    return asyncio.run(coro)


def wire(v):
    from repro.core.serialize import encode_vertex

    return encode_vertex(v)


async def _started(catalog, **kwargs) -> OracleServer:
    server = OracleServer(catalog, port=0, **kwargs)
    await server.start()
    return server


def span_records(collector: CollectingSink):
    """Flatten a CollectingSink's root spans into (name, span) pairs."""
    out = []
    for root in collector.roots:
        stack = [root]
        while stack:
            node = stack.pop()
            out.append(node)
            stack.extend(node.children)
    return out


class TestJoinedTraces:
    def test_client_and_server_spans_share_one_trace(self, catalog):
        collector = CollectingSink()

        async def main():
            server = await _started(catalog)
            client = ResilientClient(
                [("127.0.0.1", server.port)],
                policy=RetryPolicy(attempts=2, attempt_timeout=5.0),
            )
            try:
                await client.dist((0, 0), (4, 4))
            finally:
                await client.close()
                await server.shutdown()

        with use_sink(collector):
            run(main())

        spans = span_records(collector)
        by_name = {}
        for node in spans:
            by_name.setdefault(node.name, []).append(node)
        (request,) = by_name["client.request"]
        (attempt,) = by_name["client.attempt"]
        (serve,) = by_name["serve.request"]
        # One trace id end to end; the server root hangs off the attempt.
        assert request.trace_id == attempt.trace_id == serve.trace_id
        assert attempt.parent_span_id == request.span_id
        assert serve.parent_span_id == attempt.span_id
        assert {n.name for n in serve.children} >= {"serve.parse", "serve.estimate"}
        assert request.attributes["outcome"] == "ok"
        assert attempt.attributes["kind"] == "initial"

    def test_spans_join_under_drop_fault_plan(self, catalog, tmp_path):
        # The acceptance scenario: 10% dropped replies force retries, and
        # every retry attempt still stitches its server spans into the
        # same per-request tree (written through real JSONL files).
        plan = FaultPlan.from_dict(
            {
                "format": "repro-fault-plan/1",
                "seed": 3,
                "rules": [{"kind": "drop", "rate": 0.1}],
            }
        )
        # One sink for both sides: server and client share this process,
        # and stacking two file sinks would duplicate every span.  The
        # cross_process gate keys on span names, not the service tag.
        spans_path = tmp_path / "spans.jsonl"

        async def main():
            server = await _started(catalog, fault_plan=plan)
            client = ResilientClient(
                [("127.0.0.1", server.port)],
                policy=RetryPolicy(attempts=6, attempt_timeout=0.3),
                seed=5,
            )
            pairs = [((0, 0), (4, 4)), ((1, 2), (3, 0)), ((2, 2), (0, 3))] * 12
            try:
                for u, v in pairs:
                    await client.dist(u, v)
            finally:
                await client.close()
                await server.shutdown()
            return len(pairs), client.counters["retries"]

        with use_sink(JsonlSpanSink(spans_path, service="test")):
            num_pairs, retries = run(main())

        records, skipped = read_span_files([spans_path])
        assert skipped == 0
        trees = assemble_traces(records)
        assert len(trees) == num_pairs
        # Every request must reassemble into ONE cross-process tree,
        # including the ones whose first attempt was dropped.
        assert all(cross_process(tree) for tree in trees)
        assert retries > 0  # the plan actually bit
        retried = [t for t in trees if len(t.find_all("client.attempt")) > 1]
        assert retried, "expected at least one multi-attempt trace"
        for tree in retried:
            kinds = [a.attrs["kind"] for a in tree.find_all("client.attempt")]
            assert kinds[0] == "initial" and "retry" in kinds


class TestHedging:
    def test_losing_hedge_span_recorded_and_tagged(self, catalog):
        # Slow every reply so the hedge always fires; both attempts'
        # spans must appear, the loser tagged cancelled.
        plan = FaultPlan.from_dict(
            {
                "format": "repro-fault-plan/1",
                "seed": 0,
                "rules": [{"kind": "delay", "rate": 1.0, "delay_ms": 80.0}],
            }
        )
        collector = CollectingSink()

        async def main():
            server = await _started(catalog, fault_plan=plan)
            client = ResilientClient(
                [("127.0.0.1", server.port)],
                policy=RetryPolicy(
                    attempts=2, attempt_timeout=5.0, hedge_after=0.01
                ),
            )
            try:
                response = await client.dist((0, 0), (4, 4))
            finally:
                await client.close()
                await server.shutdown()
            return response, dict(client.counters)

        with use_sink(collector):
            response, counters = run(main())

        assert response["ok"] is True
        assert counters["hedges"] == 1
        (request,) = [
            n for n in span_records(collector) if n.name == "client.request"
        ]
        attempts = [c for c in request.children if c.name == "client.attempt"]
        assert len(attempts) == 2
        kinds = {a.attributes["kind"] for a in attempts}
        assert kinds == {"initial", "hedge"}
        winners = [a for a in attempts if not a.attributes.get("cancelled")]
        losers = [a for a in attempts if a.attributes.get("cancelled")]
        assert len(winners) == 1 and len(losers) == 1
        assert losers[0].error == "CancelledError"
        assert request.attributes["winner"] in ("primary", "hedge")


class TestDeterministicIds:
    def test_ids_byte_identical_across_seeded_runs(self, catalog, tmp_path):
        async def workload(port):
            client = ResilientClient(
                [("127.0.0.1", port)],
                policy=RetryPolicy(attempts=2, attempt_timeout=5.0),
                seed=42,
            )
            try:
                for u, v in [((0, 0), (4, 4)), ((1, 2), (3, 0))]:
                    await client.dist(u, v)
            finally:
                await client.close()

        def one_run(tag):
            path = tmp_path / f"client_{tag}.jsonl"

            async def main():
                server = await _started(catalog)
                try:
                    await workload(server.port)
                finally:
                    await server.shutdown()

            with use_sink(JsonlSpanSink(path, service="loadgen")):
                run(main())
            ids = []
            for line in path.read_text().splitlines():
                record = json.loads(line)
                if "format" in record:
                    continue
                ids.append(
                    (record["name"], record["trace"], record["span"], record["parent"])
                )
            return sorted(ids)

        first, second = one_run("a"), one_run("b")
        # Same seed, same workload -> byte-identical trace and span ids,
        # even though timings differ between the two runs.
        assert first == second
        assert first  # non-empty


class TestMetricsOp:
    def test_metrics_snapshot_shape(self, catalog):
        async def main():
            server = await _started(catalog, cache_size=8)
            lines = await rpc(
                server.port,
                [
                    {"op": "DIST", "u": wire((0, 0)), "v": wire((4, 4))},
                    {"op": "METRICS"},
                    {"op": "STATS"},
                ],
            )
            await server.shutdown()
            return [json.loads(line) for line in lines]

        _, metrics_resp, stats = run(main())
        assert metrics_resp["ok"] is True
        assert metrics_resp["op"] == "METRICS"
        assert metrics_resp["counters"]["requests"] >= 1
        assert metrics_resp["uptime_s"] >= 0
        assert metrics_resp["rss_bytes"] > 0
        assert metrics_resp["cache"]["capacity"] == 8
        assert metrics_resp["shards"]["grid"]  # per-shard label counts
        assert metrics_resp["faults"]["enabled"] is False
        # Registry off by default: the snapshot says so instead of lying
        # with empty per-op tables.
        assert metrics_resp["metrics_enabled"] is False
        assert "metrics" not in metrics_resp
        # Satellite: STATS grew an rss field too.
        assert stats["rss_bytes"] > 0


class TestLoadgenSlo:
    def test_slo_attainment_reported(self, catalog):
        async def main():
            server = await _started(catalog)
            report = await run_loadgen(
                "127.0.0.1",
                server.port,
                [((0, 0), (4, 4)), ((1, 2), (3, 0))] * 5,
                concurrency=2,
                slo_ms=60_000.0,  # generous: everything should hit
            )
            await server.shutdown()
            return report

        report = run(main())
        assert report.slo_total == 10
        assert report.slo_hits == 10
        assert report.slo_attainment == 1.0
        rows = dict(report.rows())
        assert rows["slo_ms"] == 60_000.0
        assert rows["slo_attainment"] == 1.0
        assert report.meta()["slo"]["attainment"] == 1.0
