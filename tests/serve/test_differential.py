"""Differential serving test: the wire answer IS the offline answer.

For random graphs across every separator engine, each estimate served
through a faulty network (an active fault plan: drops, delays, and
corrupted bytes) and the :class:`ResilientClient` must be
**byte-identical** — compared as strict-JSON text — to the offline
``load_labeling(...).estimate`` on the same dumped labeling.  Faults
may cost retries; they may never change a single byte of an answer.

Includes the null/unreachable path: a vertex whose label shares no
separator path with anyone serves ``{"estimate": null, "unreachable":
true}``, matching the offline ``inf``.
"""

import asyncio
import json
import math

import pytest

from repro.core import build_decomposition, build_labeling
from repro.core.engines import (
    CenterBagEngine,
    GreedyPeelingEngine,
    StrongGreedyEngine,
    TreeCentroidEngine,
)
from repro.core.labeling import VertexLabel
from repro.core.serialize import RemoteLabels, dump_labeling, load_labeling
from repro.generators import grid_2d, random_tree
from repro.planar import PlanarCycleEngine
from repro.serve import (
    FaultPlan,
    OracleServer,
    ResilientClient,
    RetryPolicy,
    ShardedLabelStore,
    StoreCatalog,
)
from repro.serve.loadgen import synthesize_pairs

# A plan that exercises every client-visible fault class without
# making the run slow: most replies are clean, some are dropped,
# delayed a hair, or corrupted in either mode.
FAULT_PLAN = FaultPlan.from_dict(
    {
        "format": "repro-fault-plan/1",
        "seed": 99,
        "rules": [
            {"kind": "drop", "rate": 0.12},
            {"kind": "delay", "rate": 0.3, "delay_ms": 2.0},
            {"kind": "corrupt", "rate": 0.08, "mode": "garble"},
            {"kind": "corrupt", "rate": 0.08, "mode": "truncate"},
        ],
    }
)

RETRY_POLICY = RetryPolicy(attempts=10, attempt_timeout=0.3, backoff_base=0.005)


def _grid(seed):
    return grid_2d(4, weight_range=(1.0, 5.0), seed=seed)


ENGINE_CASES = [
    pytest.param(lambda: _grid(1), lambda: GreedyPeelingEngine(seed=7),
                 id="grid-greedy"),
    pytest.param(lambda: random_tree(18, weight_range=(1.0, 3.0), seed=2),
                 lambda: TreeCentroidEngine(), id="tree-centroid"),
    pytest.param(lambda: _grid(3), lambda: CenterBagEngine(order="min_degree"),
                 id="grid-centerbag"),
    pytest.param(lambda: _grid(4), lambda: StrongGreedyEngine(seed=5),
                 id="grid-stronggreedy"),
    pytest.param(lambda: _grid(5), lambda: PlanarCycleEngine(),
                 id="grid-planarcycle"),
]


def _serve_and_compare(remote, pairs, store=None):
    """Serve *remote* (or an explicit *store* holding the same labels)
    behind FAULT_PLAN; return [(offline_json, served_json)] per pair,
    both as strict-JSON text."""

    async def main():
        catalog = StoreCatalog()
        catalog.add(
            store
            if store is not None
            else ShardedLabelStore.from_remote("diff", remote, num_shards=4)
        )
        server = OracleServer(catalog, port=0, fault_plan=FAULT_PLAN)
        await server.start()
        client = ResilientClient(
            [("127.0.0.1", server.port)],
            policy=RETRY_POLICY,
            breaker_threshold=1000,  # the faults are the point; don't trip
        )
        rows = []
        try:
            for u, v in pairs:
                response = await client.dist(u, v)
                offline = remote.estimate(u, v)
                offline_json = json.dumps(
                    None if math.isinf(offline) else offline
                )
                served_json = json.dumps(response.get("estimate"))
                rows.append(
                    (offline_json, served_json, response.get("unreachable"))
                )
        finally:
            await client.close()
            await server.shutdown()
        return rows, dict(client.counters), server.faults.status()

    return asyncio.run(main())


class TestDifferentialUnderFaults:
    @pytest.mark.parametrize("make_graph, make_engine", ENGINE_CASES)
    def test_served_equals_offline_byte_for_byte(self, make_graph, make_engine):
        graph = make_graph()
        tree = build_decomposition(graph, engine=make_engine())
        labeling = build_labeling(graph, tree, epsilon=0.25)
        # The comparison oracle is the *dumped* labeling loaded back —
        # exactly the bytes the server loaded, so any disagreement is
        # the serving path's fault, not serialization drift.
        remote = load_labeling(dump_labeling(labeling))
        pairs = synthesize_pairs(list(remote.vertices()), 24, seed=13)
        rows, counters, faults = _serve_and_compare(remote, pairs)
        for offline_json, served_json, _ in rows:
            assert served_json == offline_json
        # The plan really was active: faults were injected server-side.
        assert sum(faults["injected"].values()) > 0

    @pytest.mark.parametrize("make_graph, make_engine", ENGINE_CASES)
    def test_binary_codec_answers_match_json_byte_for_byte(
        self, make_graph, make_engine, tmp_path
    ):
        """The /2 codec changes the bytes on disk, never the answers.

        Offline: ``load_labeling`` of the JSON text and of the packed
        binary blob must estimate identically (as strict-JSON text) on
        every pair.  Served: a :class:`MappedLabelStore` mmap'ing the
        binary file, behind the active fault plan and the resilient
        client, must answer byte-identically to the offline JSON path.
        """
        graph = make_graph()
        tree = build_decomposition(graph, engine=make_engine())
        labeling = build_labeling(graph, tree, epsilon=0.25)
        json_text = dump_labeling(labeling)
        binary_path = tmp_path / "labels.bin"
        dump_labeling(labeling, binary_path, codec="binary", num_shards=4)

        remote_json = load_labeling(json_text)
        remote_bin = load_labeling(binary_path)
        assert remote_bin.labels == remote_json.labels
        pairs = synthesize_pairs(list(remote_json.vertices()), 24, seed=13)
        for u, v in pairs:
            a, b = remote_json.estimate(u, v), remote_bin.estimate(u, v)
            assert json.dumps(None if math.isinf(a) else a) == json.dumps(
                None if math.isinf(b) else b
            )

        store = ShardedLabelStore.load(binary_path, name="diff")
        assert store.codec == "binary"
        rows, _, faults = _serve_and_compare(remote_json, pairs, store=store)
        for offline_json, served_json, _ in rows:
            assert served_json == offline_json
        assert sum(faults["injected"].values()) > 0

    def test_unreachable_serves_null_and_true_flag(self):
        graph = _grid(8)
        labeling = build_labeling(
            graph, build_decomposition(graph), epsilon=0.25
        )
        base = load_labeling(dump_labeling(labeling))
        # A vertex with an empty portal map shares no separator path
        # with anyone: every query against it is offline-inf, and the
        # wire must say {"estimate": null, "unreachable": true}.
        lonely = "lonely"
        remote = RemoteLabels(
            base.epsilon,
            {**base.labels, lonely: VertexLabel(lonely, {})},
        )
        assert math.isinf(remote.estimate(lonely, (0, 0)))
        rows, _, _ = _serve_and_compare(
            remote, [(lonely, (0, 0)), ((1, 1), lonely), ((0, 0), (3, 3))]
        )
        assert rows[0][:2] == ("null", "null") and rows[0][2] is True
        assert rows[1][:2] == ("null", "null") and rows[1][2] is True
        # The reachable pair still round-trips its finite float exactly.
        assert rows[2][0] == rows[2][1] and rows[2][2] is None

    def test_faults_cost_retries_not_correctness(self):
        # Meta-check on the harness itself: across all engine cases the
        # client retried at least once overall, i.e. the differential
        # pass is exercising the resilience machinery, not a clean
        # network.  One graph with a guaranteed-drop first decision
        # makes this deterministic.
        graph = _grid(6)
        labeling = build_labeling(
            graph, build_decomposition(graph), epsilon=0.25
        )
        remote = load_labeling(dump_labeling(labeling))

        async def main():
            plan = FaultPlan.from_dict(
                {"stages": [
                    {"requests": 1, "rules": [{"kind": "drop", "rate": 1.0}]},
                    {"rules": [{"kind": "drop", "rate": 0.0}]},
                ]}
            )
            catalog = StoreCatalog()
            catalog.add(ShardedLabelStore.from_remote("diff", remote))
            server = OracleServer(catalog, port=0, fault_plan=plan)
            await server.start()
            client = ResilientClient(
                [("127.0.0.1", server.port)], policy=RETRY_POLICY
            )
            response = await client.dist((0, 0), (2, 2))
            counters = dict(client.counters)
            await client.close()
            await server.shutdown()
            return response, counters

        response, counters = asyncio.run(main())
        assert response["estimate"] == remote.estimate((0, 0), (2, 2))
        assert counters["retries"] >= 1
