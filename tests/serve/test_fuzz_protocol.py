"""Protocol fuzzing: the server must survive anything one line can say.

Two layers, same corpus:

* **Unit**: ``parse_request`` on every fuzz input returns a
  :class:`Request` or raises :class:`ProtocolError` — never any other
  exception.
* **Live**: a real :class:`OracleServer` fed the whole corpus down *one*
  connection answers every single line (valid JSON objects get their
  ``id`` echoed back) and the connection is still usable afterwards.
  A crash, a silent drop, or an unserializable error path would break
  the line count.

The corpus is seeded (``derive_seed``-style reproducibility: same seed,
same bytes) and adversarial by construction: random byte garbage,
structurally valid JSON of the wrong shape, mutated valid requests,
deep nesting, huge numbers, non-finite floats, null bytes, and unicode
edge cases.
"""

import asyncio
import json
import random
import string

import pytest

from repro.core.serialize import RemoteLabels, SerializationError, load_labeling
from repro.serve import OracleServer
from repro.serve.protocol import ProtocolError, Request, parse_request

CORPUS_SIZE = 600
_FUZZ_OPS = ["DIST", "BATCH", "LABEL", "HEALTH", "STATS"]  # no FAULT: the
# live test must not accidentally arm or clear fault plans mid-fuzz.


def _random_scalar(rng: random.Random):
    return rng.choice(
        [
            None,
            True,
            False,
            rng.randint(-(10**12), 10**12),
            rng.random() * 10**6,
            -rng.random(),
            "".join(rng.choices(string.printable, k=rng.randrange(12))),
            "☃" * rng.randrange(4),
            1e308 * rng.choice([1.0, -1.0]),
        ]
    )


def _random_json(rng: random.Random, depth: int = 0):
    if depth > 5:
        return _random_scalar(rng)
    roll = rng.random()
    if roll < 0.5:
        return _random_scalar(rng)
    if roll < 0.75:
        return [_random_json(rng, depth + 1) for _ in range(rng.randrange(4))]
    return {
        "".join(rng.choices(string.ascii_lowercase, k=3)): _random_json(
            rng, depth + 1
        )
        for _ in range(rng.randrange(4))
    }


def _mutated_request(rng: random.Random) -> dict:
    """Start from a plausible request, then vandalize it."""
    payload = {
        "id": rng.randrange(1000),
        "op": rng.choice(_FUZZ_OPS + ["dist", "QUACK", "", "FAUL T"]),
        "u": rng.choice([0, (0, 0), {"t": [0, 0]}, "x", None, True, [1]]),
        "v": rng.choice([1, {"t": [1, 1]}, {"t": "zz"}, [], {}, -3]),
    }
    for _ in range(rng.randrange(3)):
        mutation = rng.random()
        if mutation < 0.3 and payload:
            payload.pop(rng.choice(sorted(payload)))
        elif mutation < 0.6:
            payload[rng.choice(["pairs", "store", "action", "plan"])] = (
                _random_json(rng, depth=3)
            )
        else:
            payload["id"] = rng.choice(
                [None, {}, [], "x" * 50, 2**70, -0.0, 3.14]
            )
    return payload


def _garbage_bytes(rng: random.Random) -> bytes:
    data = bytes(rng.randrange(256) for _ in range(rng.randrange(1, 80)))
    # One request per line: newlines inside would split into several
    # (still legal, but it would break the 1:1 reply accounting below).
    return data.replace(b"\n", b"?").replace(b"\r", b"?")


def _textual_trap(rng: random.Random) -> str:
    """Strings that JSON parsers historically mishandle."""
    return rng.choice(
        [
            "",
            " ",
            "{",
            "}",
            "[[[[[[",
            '{"op": "DIST"',
            '{"op": "DIST", "u": NaN, "v": 1}',
            '{"op": "DIST", "u": Infinity, "v": 1}',
            '{"op": "DIST", "u": -Infinity, "v": 1}',
            '{"op": "DIST", "u": 1e999, "v": 2}',
            '{"op": "DIST", "u": 1, "v": 2, "id": 1e999}',
            '{"id": 1e999, "op": "HEALTH"}',
            '{"op": "BATCH", "pairs": ' + "[" * 60 + "]" * 60 + "}",
            '{"op": "HEALTH"} trailing garbage',
            '{"op": "HEALTH"}{"op": "HEALTH"}',
            "null",
            "true",
            "-1.5",
            '"op"',
            '{"op": null}',
            '{"op": ["DIST"]}',
            '{"\\u0000": 1, "op": "HEALTH"}',
            '{"op": "LABEL", "v": {"t": []}}',
            '{"op": "LABEL", "v": {"t": [true]}}',
            '{"op": "DIST", "u": {"t": 1}, "v": 2}',
        ]
    )


def fuzz_corpus(seed: int = 20260806, size: int = CORPUS_SIZE):
    """*size* reproducible nasty lines: (kind, bytes) tuples."""
    rng = random.Random(seed)
    corpus = []
    for index in range(size):
        roll = rng.random()
        if roll < 0.25:
            corpus.append(("garbage", _garbage_bytes(rng)))
        elif roll < 0.45:
            corpus.append(("trap", _textual_trap(rng).encode("utf-8")))
        elif roll < 0.70:
            doc = json.dumps(_random_json(rng)).replace("\n", " ")
            corpus.append(("shape", doc.encode("utf-8")))
        else:
            doc = json.dumps(_mutated_request(rng))
            corpus.append(("mutant", doc.encode("utf-8")))
    return corpus


class TestParseNeverExplodes:
    def test_corpus_is_big_and_reproducible(self):
        corpus = fuzz_corpus()
        assert len(corpus) >= 500
        assert corpus == fuzz_corpus()
        assert fuzz_corpus(seed=1, size=50) != fuzz_corpus(seed=2, size=50)
        # All four generator families are represented.
        kinds = {kind for kind, _ in corpus}
        assert kinds == {"garbage", "trap", "shape", "mutant"}

    def test_parse_request_total_on_corpus(self):
        for kind, line in fuzz_corpus():
            try:
                request = parse_request(line)
            except ProtocolError:
                continue  # a typed rejection is a correct outcome
            assert isinstance(request, Request), (kind, line)

    def test_non_finite_numbers_are_rejected_not_crashed(self):
        for line in (
            '{"op": "DIST", "u": NaN, "v": 1}',
            '{"op": "DIST", "u": 1e999, "v": 2}',
            '{"id": 1e999, "op": "HEALTH"}',
            '{"op": "HEALTH", "store": "x", "id": [Infinity]}',
        ):
            with pytest.raises(ProtocolError) as info:
                parse_request(line)
            assert info.value.code == "bad_request"


def _labels_seed_payloads():
    """Well-formed labeling payloads in both codecs, as bytes, to
    mutate.  Built once per call: (json_bytes, binary_bytes)."""
    from repro.core.labeling import VertexLabel
    from repro.core.serialize import dump_labeling

    remote = RemoteLabels(
        0.25,
        {
            v: VertexLabel(v, {(i, 0, 0): [(0.5 * i, 1.0 + i)] for i in range(3)})
            for v in [0, 1, "s", (2, 3.5)]
        },
    )
    return (
        dump_labeling(remote).encode("utf-8"),
        dump_labeling(remote, codec="binary", num_shards=3),
    )


def labels_fuzz_corpus(seed: int = 20260807, size: int = 300):
    """*size* mutated labeling files across both codecs.

    Byte-level vandalism of valid /1 and /2 payloads: flips, truncation,
    splices, and duplicate-vertex injections.  Every one must load
    cleanly or raise :class:`SerializationError` — never crash, never
    silently drop a label.
    """
    rng = random.Random(seed)
    json_seed, binary_seed = _labels_seed_payloads()
    corpus = []
    for _ in range(size):
        data = bytearray(rng.choice([json_seed, binary_seed]))
        mutation = rng.random()
        if mutation < 0.4:  # flip a few bytes
            for _ in range(rng.randrange(1, 6)):
                data[rng.randrange(len(data))] = rng.randrange(256)
        elif mutation < 0.6:  # truncate
            del data[rng.randrange(1, len(data)) :]
        elif mutation < 0.8:  # splice a run from elsewhere in the file
            at = rng.randrange(len(data))
            src = rng.randrange(len(data))
            run = data[src : src + rng.randrange(1, 40)]
            data[at:at] = run
        else:  # append garbage
            data += bytes(rng.randrange(256) for _ in range(rng.randrange(1, 30)))
        corpus.append(bytes(data))
    return corpus


class TestLabelsFileFuzz:
    """The label loaders must be total on corrupt files, both codecs."""

    def test_corpus_is_reproducible(self):
        assert labels_fuzz_corpus() == labels_fuzz_corpus()
        assert labels_fuzz_corpus(seed=1, size=20) != labels_fuzz_corpus(
            seed=2, size=20
        )

    def test_load_labeling_total_on_mutated_files(self, tmp_path):
        path = tmp_path / "fuzz.labels"
        outcomes = {"loaded": 0, "rejected": 0}
        for data in labels_fuzz_corpus():
            path.write_bytes(data)
            try:
                remote = load_labeling(path)
            except SerializationError:
                outcomes["rejected"] += 1
                continue
            assert isinstance(remote, RemoteLabels)
            outcomes["loaded"] += 1
        # Mutations overwhelmingly corrupt the payload; the point is
        # that every rejection was the *typed* error.
        assert outcomes["rejected"] > 200, outcomes

    def test_duplicate_vertex_rejected_json_codec(self):
        # The exact corruption the last-wins bug used to swallow.
        label = '{"v": 5, "e": {"0:0:0": [[0.0, 1.0]]}}'
        payload = (
            '{"format": "repro-distance-labels/1", "epsilon": 0.25, '
            f'"labels": [{label}, {label}]}}'
        )
        with pytest.raises(SerializationError, match="duplicate label"):
            load_labeling(payload)

    def test_duplicate_vertex_rejected_binary_codec(self):
        import struct

        from repro.core.binfmt import BinaryLabelReader, pack_labeling
        from repro.core.labeling import VertexLabel

        entries = {(0, 0, 0): [(0.0, 1.0)]}
        remote = RemoteLabels(
            0.25, {5: VertexLabel(5, entries), 5.5: VertexLabel(5.5, entries)}
        )
        blob = bytearray(pack_labeling(remote, num_shards=1))
        # Forge record 1's vertex (float 5.5, 9 bytes) into int 5.
        start, _ = BinaryLabelReader(bytes(blob))._record_span(1)
        blob[start : start + 9] = b"\x01" + struct.pack("<q", 5)
        with pytest.raises(SerializationError, match="duplicate label"):
            load_labeling(bytes(blob))


class TestServerSurvivesTheCorpus:
    def _drive(self, catalog, corpus):
        async def main():
            server = OracleServer(catalog, port=0)
            await server.start()
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            replies = []
            try:
                for _, line in corpus:
                    writer.write(line + b"\n")
                    await writer.drain()
                    if not line.strip():
                        # Blank lines are documented keep-alives: the
                        # server skips them without replying.
                        replies.append(None)
                        continue
                    reply = await asyncio.wait_for(reader.readline(), 10)
                    replies.append(reply)
                # The connection must still be fully usable afterwards.
                writer.write(b'{"id": "alive", "op": "HEALTH"}\n')
                await writer.drain()
                final = await asyncio.wait_for(reader.readline(), 10)
            finally:
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass
                await server.shutdown()
            return replies, final

        return asyncio.run(main())

    def test_every_line_gets_a_reply_and_the_connection_lives(self, catalog):
        corpus = fuzz_corpus()
        replies, final = self._drive(catalog, corpus)
        assert len(replies) == len(corpus)
        for (kind, line), reply in zip(corpus, replies):
            if reply is None:
                continue  # blank keep-alive line, lawfully unanswered
            # Never a dropped connection (empty read = EOF), and every
            # reply is one strict-JSON line the client can decode.
            assert reply.endswith(b"\n"), (kind, line, reply)
            response = json.loads(reply)
            assert isinstance(response, dict)
            assert "ok" in response
            if not response["ok"]:
                assert response["error"]["code"], (kind, line)
        survivor = json.loads(final)
        assert survivor["ok"] is True and survivor["id"] == "alive"

    def test_valid_json_objects_get_their_id_echoed(self, catalog):
        corpus = fuzz_corpus()
        replies, _ = self._drive(catalog, corpus)
        checked = 0
        for (_, line), reply in zip(corpus, replies):
            if reply is None:
                continue
            try:
                sent = json.loads(line)
            except (UnicodeDecodeError, json.JSONDecodeError, ValueError):
                continue
            if not isinstance(sent, dict):
                continue
            sent_id = sent.get("id")
            if not isinstance(sent_id, (str, int)) or isinstance(sent_id, bool):
                continue  # unhashable / float ids may be lawfully dropped
            response = json.loads(reply)
            assert response.get("id") == sent_id, (line, reply)
            checked += 1
        assert checked >= 30  # the corpus really exercises the echo path
