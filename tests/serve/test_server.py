"""OracleServer behavior over real TCP connections.

Each test spins up a server on an ephemeral port inside ``asyncio.run``
(no event-loop plugin needed) and talks to it through the ``rpc``
helper from conftest.
"""

import asyncio
import json

from repro.serve import MAX_LINE_BYTES, OracleServer
from repro.serve.server import DEFAULT_MAX_BATCH

from tests.serve.conftest import rpc


def run(coro):
    return asyncio.run(coro)


async def _started(catalog, **kwargs) -> OracleServer:
    server = OracleServer(catalog, port=0, **kwargs)
    await server.start()
    return server


def wire(v):
    from repro.core.serialize import encode_vertex

    return encode_vertex(v)


class TestRoundTrips:
    def test_dist_matches_offline_estimate_exactly(self, catalog, remote_labels):
        async def main():
            server = await _started(catalog)
            pairs = [((0, 0), (4, 4)), ((1, 2), (3, 0)), ((0, 4), (4, 0))]
            requests = [
                {"id": i, "op": "DIST", "u": wire(u), "v": wire(v)}
                for i, (u, v) in enumerate(pairs)
            ]
            lines = await rpc(server.port, requests)
            await server.shutdown()
            return pairs, lines

        pairs, lines = run(main())
        for (u, v), line in zip(pairs, lines):
            response = json.loads(line)
            assert response["ok"] is True
            # Acceptance bar: the served float is the offline float,
            # not an approximation of it.
            assert response["estimate"] == remote_labels.estimate(u, v)
            assert response["epsilon"] == remote_labels.epsilon

    def test_batch(self, catalog, remote_labels):
        async def main():
            server = await _started(catalog)
            pairs = [[wire((0, 0)), wire((2, 2))], [wire((1, 1)), wire((9, 9))]]
            (line,) = await rpc(server.port, [{"op": "BATCH", "pairs": pairs}])
            await server.shutdown()
            return line

        response = json.loads(run(main()))
        good, bad = response["results"]
        assert good["ok"] and good["estimate"] == remote_labels.estimate(
            (0, 0), (2, 2)
        )
        assert bad["ok"] is False and bad["error"]["code"] == "unknown_vertex"

    def test_label_health_stats(self, catalog, remote_labels):
        async def main():
            server = await _started(catalog)
            lines = await rpc(
                server.port,
                [
                    {"op": "LABEL", "v": wire((2, 2))},
                    {"op": "HEALTH"},
                    {"op": "STATS"},
                ],
            )
            await server.shutdown()
            return lines

        label, health, stats = map(json.loads, run(main()))
        assert label["words"] == remote_labels.label((2, 2)).words
        assert health["status"] == "serving"
        assert health["labels"] == remote_labels.num_labels
        assert stats["stores"]["grid"]["labels"] == remote_labels.num_labels
        assert stats["counters"]["requests"] >= 2


class TestErrorHandling:
    def test_malformed_then_valid_on_same_connection(self, catalog):
        async def main():
            server = await _started(catalog)
            lines = await rpc(
                server.port,
                [
                    b"this is not json\n",
                    {"op": "DIST", "u": wire((0, 0)), "v": wire((1, 1))},
                ],
            )
            await server.shutdown()
            return lines

        bad, good = map(json.loads, run(main()))
        # A malformed request gets a structured reply and the
        # connection keeps serving.
        assert bad["ok"] is False and bad["error"]["code"] == "bad_request"
        assert good["ok"] is True

    def test_unlabeled_vertex(self, catalog):
        async def main():
            server = await _started(catalog)
            lines = await rpc(
                server.port,
                [
                    {"id": 5, "op": "DIST", "u": wire((0, 0)), "v": wire((7, 7))},
                    {"op": "HEALTH"},
                ],
            )
            await server.shutdown()
            return lines

        error, health = map(json.loads, run(main()))
        assert error["id"] == 5
        assert error["error"]["code"] == "unknown_vertex"
        assert health["ok"] is True  # connection survived

    def test_unknown_store(self, catalog):
        async def main():
            server = await _started(catalog)
            (line,) = await rpc(
                server.port,
                [{"op": "DIST", "u": wire((0, 0)), "v": wire((1, 1)),
                  "store": "west"}],
            )
            await server.shutdown()
            return line

        assert json.loads(run(main()))["error"]["code"] == "unknown_store"

    def test_batch_too_large(self, catalog):
        async def main():
            server = await _started(catalog, max_batch=2)
            pairs = [[wire((0, 0)), wire((1, 1))]] * 3
            (line,) = await rpc(server.port, [{"op": "BATCH", "pairs": pairs}])
            await server.shutdown()
            return line

        assert json.loads(run(main()))["error"]["code"] == "batch_too_large"
        assert DEFAULT_MAX_BATCH >= 1024

    def test_oversized_line_gets_reply_then_close(self, catalog):
        async def main():
            server = await _started(catalog)
            reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
            writer.write(b"x" * (MAX_LINE_BYTES + 10) + b"\n")
            await writer.drain()
            line = await asyncio.wait_for(reader.readline(), 10)
            trailer = await asyncio.wait_for(reader.read(), 10)  # EOF
            writer.close()
            await server.shutdown()
            return line, trailer

        line, trailer = run(main())
        assert json.loads(line)["error"]["code"] == "bad_request"
        assert trailer == b""

    def test_request_timeout(self, catalog):
        class SlowServer(OracleServer):
            async def _dispatch(self, request):
                await asyncio.sleep(0.5)
                return await super()._dispatch(request)

        async def main():
            server = SlowServer(catalog, port=0, request_timeout=0.05)
            await server.start()
            (line,) = await rpc(server.port, [{"id": 1, "op": "HEALTH"}])
            await server.shutdown()
            return line

        response = json.loads(run(main()))
        assert response["id"] == 1
        assert response["error"]["code"] == "timeout"


class TestCache:
    def test_cached_answer_byte_equal_and_symmetric(self, catalog):
        async def main():
            server = await _started(catalog, cache_size=16)
            request = {"id": 1, "op": "DIST", "u": wire((0, 0)), "v": wire((3, 4))}
            flipped = {"id": 1, "op": "DIST", "u": wire((3, 4)), "v": wire((0, 0))}
            lines = await rpc(server.port, [request, request, flipped])
            counters = dict(server.counters)
            await server.shutdown()
            return lines, counters

        (first, second, third), counters = run(main())
        assert first == second  # cached answer is byte-equal to uncached
        assert json.loads(third)["estimate"] == json.loads(first)["estimate"]
        # miss, hit, hit (the canonicalized key covers (v, u) too)
        assert counters["cache_misses"] == 1
        assert counters["cache_hits"] == 2

    def test_cache_evicts_at_capacity(self, catalog, remote_labels):
        async def main():
            server = await _started(catalog, cache_size=2)
            vs = sorted(remote_labels.vertices())
            requests = [
                {"op": "DIST", "u": wire(vs[0]), "v": wire(v)} for v in vs[1:6]
            ]
            await rpc(server.port, requests)
            size = len(server.cache)
            await server.shutdown()
            return size

        assert run(main()) == 2

    def test_cache_off_by_default(self, catalog):
        async def main():
            server = await _started(catalog)
            request = {"op": "DIST", "u": wire((0, 0)), "v": wire((1, 1))}
            await rpc(server.port, [request, request])
            counters = dict(server.counters)
            await server.shutdown()
            return counters

        counters = run(main())
        assert counters["cache_hits"] == 0 and counters["cache_misses"] == 0


class TestBackpressure:
    def test_inflight_never_exceeds_cap(self, catalog):
        class SlowServer(OracleServer):
            async def _dispatch(self, request):
                await asyncio.sleep(0.03)
                return await super()._dispatch(request)

        async def main():
            server = SlowServer(catalog, port=0, max_inflight=2)
            await server.start()
            lines = await asyncio.gather(
                *(rpc(server.port, [{"id": i, "op": "HEALTH"}]) for i in range(8))
            )
            peak = server.peak_inflight
            await server.shutdown()
            return lines, peak

        lines, peak = run(main())
        assert all(json.loads(batch[0])["ok"] for batch in lines)
        # 8 concurrent connections, at most 2 requests executing.
        assert peak <= 2


class TestGracefulShutdown:
    def test_drain_finishes_inflight_request(self, catalog):
        class SlowServer(OracleServer):
            def __init__(self, *a, **kw):
                super().__init__(*a, **kw)
                self.entered = asyncio.Event()

            async def _dispatch(self, request):
                self.entered.set()
                await asyncio.sleep(0.2)
                return await super()._dispatch(request)

        async def main():
            server = SlowServer(catalog, port=0, drain_grace=5.0)
            await server.start()
            port = server.port
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(json.dumps({"id": 1, "op": "HEALTH"}).encode() + b"\n")
            await writer.drain()
            await server.entered.wait()  # request is now inflight
            shutdown = asyncio.create_task(server.shutdown())
            line = await asyncio.wait_for(reader.readline(), 10)
            await shutdown
            # Once drained, the listener is gone.
            try:
                await asyncio.open_connection("127.0.0.1", port)
                refused = False
            except (ConnectionError, OSError):
                refused = True
            writer.close()
            return line, refused, server.draining

        line, refused, draining = run(main())
        response = json.loads(line)
        # The inflight request completed and its response was flushed.
        assert response["ok"] is True and response["status"] in (
            "serving",
            "draining",
        )
        assert refused
        assert draining

    def test_shutdown_idempotent_and_idle(self, catalog):
        async def main():
            server = await _started(catalog)
            await server.shutdown()
            await server.shutdown()  # second call is a no-op
            return server.draining

        assert run(main())

    def test_drain_waits_for_inflight_response_write(self, catalog):
        """Regression: the BATCH-drain race.

        The old drain signal fired when the dispatch semaphore was
        released — *before* the response bytes were written — so a
        shutdown landing between compute and flush closed the writer
        mid-response.  Now the active-op counter covers the write:
        shutdown must deliver the full reply even when it arrives while
        the server is sleeping inside the write path.
        """

        class SlowWriteServer(OracleServer):
            def __init__(self, *a, **kw):
                super().__init__(*a, **kw)
                self.computed = asyncio.Event()

            async def _write_response(self, writer, response, op):
                self.computed.set()  # the answer exists; bytes do not yet
                await asyncio.sleep(0.3)
                await super()._write_response(writer, response, op)

        async def main():
            server = SlowWriteServer(catalog, port=0, drain_grace=5.0)
            await server.start()
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            pairs = [
                [{"t": [0, 0]}, {"t": [i, i]}] for i in range(1, 5)
            ]
            writer.write(
                json.dumps({"id": 7, "op": "BATCH", "pairs": pairs}).encode()
                + b"\n"
            )
            await writer.drain()
            await server.computed.wait()
            # Shutdown lands exactly in the compute-to-flush window.
            await server.shutdown()
            line = await asyncio.wait_for(reader.readline(), 10)
            writer.close()
            return line

        response = json.loads(run(main()))
        assert response["ok"] is True and response["id"] == 7
        assert len(response["results"]) == 4
        assert all(item["ok"] for item in response["results"])

    def test_sigterm_mid_batch_still_delivers(self, remote_labels, tmp_path):
        """SIGTERM arriving while a BATCH response is delayed in the
        write path (fault-injected latency) must not cost the reply:
        the server drains, the client gets every byte, exit code 0."""
        import json as json_mod
        import os
        import signal
        import socket
        import subprocess
        import sys
        import time

        from repro.core.serialize import dump_labeling, encode_vertex

        labels = tmp_path / "labels.json"
        dump_labeling(remote_labels, labels)
        plan = tmp_path / "plan.json"
        plan.write_text(json_mod.dumps({
            "format": "repro-fault-plan/1",
            "rules": [{"kind": "delay", "rate": 1.0, "delay_ms": 800}],
        }))
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve",
             "--labels", str(labels), "--port", "0",
             "--fault-plan", str(plan)],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env={**os.environ, "PYTHONPATH": "src"},
            cwd=os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
        )
        try:
            port = None
            deadline = time.monotonic() + 20
            for out_line in proc.stdout:
                if "serving" in out_line:
                    port = int(out_line.rsplit(":", 1)[1])
                    break
                assert time.monotonic() < deadline, "server never announced"
            assert port, "no port announced"
            pairs = [
                [encode_vertex((0, 0)), encode_vertex((i, i))]
                for i in range(1, 5)
            ]
            with socket.create_connection(("127.0.0.1", port), timeout=10) as s:
                s.sendall(
                    json_mod.dumps(
                        {"id": 1, "op": "BATCH", "pairs": pairs}
                    ).encode() + b"\n"
                )
                time.sleep(0.3)  # the reply is now stuck in the 800ms delay
                proc.send_signal(signal.SIGTERM)
                s.settimeout(15)
                chunks = b""
                while b"\n" not in chunks:
                    chunk = s.recv(4096)
                    if not chunk:
                        break
                    chunks += chunk
            response = json_mod.loads(chunks)
            assert response["ok"] is True and response["id"] == 1
            assert [item["estimate"] for item in response["results"]] == [
                remote_labels.estimate((0, 0), (i, i)) for i in range(1, 5)
            ]
            stdout, _ = proc.communicate(timeout=20)
            assert proc.returncode == 0
            assert "drained:" in stdout
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
