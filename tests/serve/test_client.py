"""ResilientClient: breaker state machine, backoff, budgets, hedging."""

import asyncio
import json

import pytest

from repro.serve import OracleServer
from repro.serve.client import (
    CircuitBreaker,
    ClientError,
    RequestFailed,
    ResilientClient,
    RetryPolicy,
    parse_address,
)
from repro.serve.faults import FaultPlan


def run(coro):
    return asyncio.run(coro)


class TestParseAddress:
    def test_host_port(self):
        assert parse_address("example.com:7471") == ("example.com", 7471)
        assert parse_address(("h", 9)) == ("h", 9)
        assert parse_address("::1:7471") == ("::1", 7471)

    @pytest.mark.parametrize("spec", ["nohost", ":7471", "h:notaport"])
    def test_rejects(self, spec):
        with pytest.raises(ClientError):
            parse_address(spec)


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ClientError):
            RetryPolicy(attempts=0)
        with pytest.raises(ClientError):
            RetryPolicy(attempt_timeout=0)

    def test_backoff_is_deterministic_and_capped(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_cap=0.5)
        first = [policy.backoff_delay(7, call, 1) for call in range(5)]
        again = [policy.backoff_delay(7, call, 1) for call in range(5)]
        assert first == again  # same seed -> same schedule
        assert first != [policy.backoff_delay(8, call, 1) for call in range(5)]
        for attempt in range(1, 12):
            delay = policy.backoff_delay(0, 0, attempt)
            ceiling = min(0.5, 0.1 * 2 ** (attempt - 1))
            assert ceiling / 2 <= delay <= ceiling  # full jitter, bounded

    def test_backoff_grows_exponentially_before_cap(self):
        policy = RetryPolicy(backoff_base=0.05, backoff_cap=100.0)
        # Upper envelope doubles each attempt.
        for attempt in range(1, 6):
            assert policy.backoff_delay(1, 1, attempt) <= 0.05 * 2 ** (attempt - 1)


class TestCircuitBreaker:
    def _breaker(self, **kwargs):
        clock = {"now": 0.0}
        breaker = CircuitBreaker(
            failure_threshold=kwargs.get("failure_threshold", 3),
            reset_after=kwargs.get("reset_after", 10.0),
            clock=lambda: clock["now"],
        )
        return breaker, clock

    def test_opens_after_consecutive_failures(self):
        breaker, _ = self._breaker()
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED and breaker.allow()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()
        assert breaker.opened_total == 1

    def test_success_resets_the_count(self):
        breaker, _ = self._breaker()
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_admits_exactly_one_probe(self):
        breaker, clock = self._breaker()
        for _ in range(3):
            breaker.record_failure()
        clock["now"] = 10.0
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert breaker.allow()        # the probe
        assert not breaker.allow()    # everyone else waits
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED and breaker.allow()

    def test_failed_probe_reopens_immediately(self):
        breaker, clock = self._breaker()
        for _ in range(3):
            breaker.record_failure()
        clock["now"] = 10.0
        assert breaker.allow()
        breaker.record_failure()  # probe failed: open again, clock restarted
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()
        assert breaker.opened_total == 2
        clock["now"] = 19.9
        assert breaker.state == CircuitBreaker.OPEN
        clock["now"] = 20.0
        assert breaker.state == CircuitBreaker.HALF_OPEN

    def test_peek_does_not_claim_the_probe_slot(self):
        breaker, clock = self._breaker()
        for _ in range(3):
            breaker.record_failure()
        clock["now"] = 10.0
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert breaker.peek() and breaker.peek()  # non-consuming
        assert breaker.allow()                    # the probe claims it
        assert not breaker.peek()                 # slot held
        # An attempt that ends without a recorded outcome must give the
        # slot back, or the breaker would stay open forever.
        breaker.release_probe()
        assert breaker.peek() and breaker.allow()

    def test_threshold_validation(self):
        with pytest.raises(ClientError):
            CircuitBreaker(failure_threshold=0)


async def _started(catalog, **kwargs):
    server = OracleServer(catalog, port=0, **kwargs)
    await server.start()
    return server


class TestClientAgainstServer:
    def test_clean_dist_and_batch(self, catalog, remote_labels):
        async def main():
            server = await _started(catalog)
            client = ResilientClient([("127.0.0.1", server.port)])
            dist = await client.dist((0, 0), (3, 3))
            batch = await client.batch([((0, 0), (1, 1)), ((2, 2), (4, 4))])
            await client.close()
            await server.shutdown()
            return dist, batch, client.counters

        dist, batch, counters = run(main())
        assert dist["estimate"] == remote_labels.estimate((0, 0), (3, 3))
        assert [i["estimate"] for i in batch["results"]] == [
            remote_labels.estimate((0, 0), (1, 1)),
            remote_labels.estimate((2, 2), (4, 4)),
        ]
        assert counters["retries"] == 0 and counters["attempts"] == 2

    def test_permanent_error_is_not_retried(self, catalog):
        async def main():
            server = await _started(catalog)
            client = ResilientClient(
                [("127.0.0.1", server.port)],
                policy=RetryPolicy(attempts=5, backoff_base=0.01),
            )
            with pytest.raises(RequestFailed) as info:
                await client.dist((0, 0), (99, 99))
            counters = dict(client.counters)
            await client.close()
            await server.shutdown()
            return info.value, counters

        exc, counters = run(main())
        assert exc.code == "unknown_vertex"
        assert counters["attempts"] == 1  # the answer, not a failure
        assert counters["retries"] == 0

    def test_breaker_recovers_after_opening(self, catalog, remote_labels):
        # Regression: address selection used to *claim* the half-open
        # probe slot, then the attempt re-checked the breaker, refused
        # itself, and the slot was never released — the breaker stayed
        # open forever and every later call died with "all circuit
        # breakers open".  An open breaker must heal once the server
        # does.
        async def main():
            staged = FaultPlan.from_dict(
                {"seed": 3, "stages": [
                    {"requests": 2,
                     "rules": [{"kind": "unavailable", "rate": 1.0}]},
                    {"rules": [{"kind": "unavailable", "rate": 0.0}]},
                ]}
            )
            server = await _started(catalog, fault_plan=staged)
            client = ResilientClient(
                [("127.0.0.1", server.port)],
                policy=RetryPolicy(attempts=8, backoff_base=0.04),
                breaker_threshold=2,   # the two staged failures open it
                breaker_reset=0.05,    # heal within the backoff schedule
            )
            response = await client.dist((0, 0), (2, 2))
            stats = client.stats()
            await client.close()
            await server.shutdown()
            return response, stats

        response, stats = run(main())
        assert response["estimate"] == remote_labels.estimate((0, 0), (2, 2))
        (breaker,) = stats["breakers"].values()
        assert breaker["opened_total"] >= 1   # it really did trip
        assert breaker["state"] == CircuitBreaker.CLOSED

    def test_retries_through_unavailable_faults(self, catalog, remote_labels):
        async def main():
            # Fail the first two decisions entirely, then go clean.
            staged = FaultPlan.from_dict(
                {"seed": 5, "stages": [
                    {"requests": 2,
                     "rules": [{"kind": "unavailable", "rate": 1.0}]},
                    {"rules": [{"kind": "unavailable", "rate": 0.0}]},
                ]}
            )
            server = await _started(catalog, fault_plan=staged)
            client = ResilientClient(
                [("127.0.0.1", server.port)],
                policy=RetryPolicy(attempts=4, backoff_base=0.005),
                breaker_threshold=50,
            )
            response = await client.dist((0, 0), (2, 2))
            counters = dict(client.counters)
            await client.close()
            await server.shutdown()
            return response, counters

        response, counters = run(main())
        assert response["estimate"] == remote_labels.estimate((0, 0), (2, 2))
        assert counters["retries"] >= 1
        assert counters["transient_failures"] >= 1

    def test_exhaustion_raises_client_error(self, catalog):
        async def main():
            plan = FaultPlan.from_rules([{"kind": "unavailable", "rate": 1.0}])
            server = await _started(catalog, fault_plan=plan)
            client = ResilientClient(
                [("127.0.0.1", server.port)],
                policy=RetryPolicy(attempts=3, backoff_base=0.003),
                breaker_threshold=50,
            )
            with pytest.raises(ClientError, match="after 3 attempt"):
                await client.dist((0, 0), (1, 1))
            counters = dict(client.counters)
            await client.close()
            await server.shutdown()
            return counters

        counters = run(main())
        assert counters["giveups"] == 1
        assert counters["attempts"] == 3

    def test_retry_budget_exhaustion(self, catalog):
        async def main():
            plan = FaultPlan.from_rules([{"kind": "unavailable", "rate": 1.0}])
            server = await _started(catalog, fault_plan=plan)
            client = ResilientClient(
                [("127.0.0.1", server.port)],
                policy=RetryPolicy(
                    attempts=10, backoff_base=0.003, retry_budget=2
                ),
                breaker_threshold=100,
            )
            with pytest.raises(ClientError, match="retry budget exhausted"):
                await client.dist((0, 0), (1, 1))
            counters = dict(client.counters)
            await client.close()
            await server.shutdown()
            return counters

        counters = run(main())
        assert counters["retries"] == 2  # the whole budget, no more

    def test_breaker_opens_against_dead_server(self, catalog):
        async def main():
            server = await _started(catalog)
            port = server.port
            await server.shutdown()  # nothing listens here any more
            client = ResilientClient(
                [("127.0.0.1", port)],
                policy=RetryPolicy(attempts=6, backoff_base=0.002),
                breaker_threshold=3,
                breaker_reset=60.0,
            )
            with pytest.raises(ClientError):
                await client.dist((0, 0), (1, 1))
            stats = client.stats()
            await client.close()
            return stats

        stats = run(main())
        (state,) = stats["breakers"].values()
        assert state["state"] == "open"
        assert state["opened_total"] == 1
        assert stats["counters"]["breaker_skips"] >= 1

    def test_timeout_is_transient(self, catalog, remote_labels):
        async def main():
            # Drop every reply in stage one (the client times the attempt
            # out), then serve cleanly: the retry must get the answer.
            staged = FaultPlan.from_dict(
                {"stages": [
                    {"requests": 1, "rules": [{"kind": "drop", "rate": 1.0}]},
                    {"rules": [{"kind": "drop", "rate": 0.0}]},
                ]}
            )
            server = await _started(catalog, fault_plan=staged)
            client = ResilientClient(
                [("127.0.0.1", server.port)],
                policy=RetryPolicy(
                    attempts=3, attempt_timeout=0.15, backoff_base=0.005
                ),
            )
            response = await client.dist((0, 0), (1, 0))
            counters = dict(client.counters)
            await client.close()
            await server.shutdown()
            return response, counters

        response, counters = run(main())
        assert response["estimate"] == remote_labels.estimate((0, 0), (1, 0))
        assert counters["retries"] == 1

    def test_corrupt_replies_are_detected_and_retried(
        self, catalog, remote_labels
    ):
        async def main():
            staged = FaultPlan.from_dict(
                {"seed": 2, "stages": [
                    {"requests": 1,
                     "rules": [{"kind": "corrupt", "rate": 1.0,
                                "mode": "garble"}]},
                    {"requests": 1,
                     "rules": [{"kind": "corrupt", "rate": 1.0,
                                "mode": "truncate"}]},
                    {"rules": [{"kind": "corrupt", "rate": 0.0}]},
                ]}
            )
            server = await _started(catalog, fault_plan=staged)
            client = ResilientClient(
                [("127.0.0.1", server.port)],
                policy=RetryPolicy(
                    attempts=5, attempt_timeout=0.3, backoff_base=0.005
                ),
            )
            response = await client.dist((0, 0), (2, 1))
            counters = dict(client.counters)
            await client.close()
            await server.shutdown()
            return response, counters

        response, counters = run(main())
        # Both corruption modes were survived and the final answer is
        # the byte-exact offline estimate.
        assert response["estimate"] == remote_labels.estimate((0, 0), (2, 1))
        assert counters["retries"] == 2

    def test_hedging_wins_against_a_stalled_reply(self, catalog, remote_labels):
        async def main():
            # Exactly the first decision stalls for much longer than the
            # hedge trigger; the hedged second attempt lands first.
            staged = FaultPlan.from_dict(
                {"stages": [
                    {"requests": 1,
                     "rules": [{"kind": "delay", "rate": 1.0,
                                "delay_ms": 1500}]},
                    {"rules": [{"kind": "delay", "rate": 0.0}]},
                ]}
            )
            server = await _started(catalog, fault_plan=staged)
            client = ResilientClient(
                [("127.0.0.1", server.port)],
                policy=RetryPolicy(
                    attempts=2, attempt_timeout=5.0, hedge_after=0.08
                ),
            )
            start = asyncio.get_running_loop().time()
            response = await client.dist((0, 0), (1, 1))
            elapsed = asyncio.get_running_loop().time() - start
            counters = dict(client.counters)
            await client.close()
            await server.shutdown()
            return response, counters, elapsed

        response, counters, elapsed = run(main())
        assert response["estimate"] == remote_labels.estimate((0, 0), (1, 1))
        assert counters["hedges"] == 1
        assert counters["hedge_wins"] == 1
        assert elapsed < 1.0  # did not wait out the 1.5s stall

    def test_concurrent_callers_share_one_client(self, catalog, remote_labels):
        async def main():
            server = await _started(catalog)
            client = ResilientClient([("127.0.0.1", server.port)])
            pairs = [((0, 0), (i % 5, (i * 2) % 5)) for i in range(1, 12)]
            responses = await asyncio.gather(
                *(client.dist(u, v) for u, v in pairs)
            )
            await client.close()
            await server.shutdown()
            return pairs, responses

        pairs, responses = run(main())
        for (u, v), response in zip(pairs, responses):
            assert response["estimate"] == remote_labels.estimate(u, v)

    def test_needs_an_address(self):
        with pytest.raises(ClientError):
            ResilientClient([])


class TestRetryAfterRefresh:
    def test_refresh_code_triggers_hook_then_immediate_retry(self):
        """A ``stale_map``-style refresh code is not a failure: the
        client runs ``on_refresh``, retries with no backoff, and the
        breaker never sees a failure.  Regression test for the refresh
        path charging the breaker / sleeping out the backoff."""
        refreshed = []

        async def main():
            replies = {"count": 0}

            async def handle(reader, writer):
                while True:
                    line = await reader.readline()
                    if not line:
                        break
                    request = json.loads(line)
                    if replies["count"] == 0:
                        reply = {
                            "id": request["id"],
                            "ok": False,
                            "error": {
                                "code": "stale_map",
                                "message": "request epoch 1, node epoch 2",
                            },
                        }
                    else:
                        reply = {
                            "id": request["id"],
                            "ok": True,
                            "op": "DIST",
                            "estimate": 4.0,
                        }
                    replies["count"] += 1
                    writer.write(json.dumps(reply).encode() + b"\n")
                    await writer.drain()

            server = await asyncio.start_server(handle, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]

            async def on_refresh(exc):
                refreshed.append(exc)

            client = ResilientClient(
                [("127.0.0.1", port)],
                # A fat backoff_base so the elapsed-time assertion can
                # tell "retried immediately" from "slept out a backoff".
                policy=RetryPolicy(
                    attempts=3, attempt_timeout=2.0, backoff_base=0.5
                ),
                refresh_codes=frozenset({"stale_map"}),
                on_refresh=on_refresh,
            )
            try:
                started = asyncio.get_running_loop().time()
                response = await client.call({"op": "DIST"})
                elapsed = asyncio.get_running_loop().time() - started
                return response, dict(client.counters), client.stats(), elapsed
            finally:
                await client.close()
                server.close()
                await server.wait_closed()

        response, counters, stats, elapsed = run(main())
        assert response["ok"] and response["estimate"] == 4.0
        assert len(refreshed) == 1
        assert refreshed[0].code == "stale_map"
        assert counters["refreshes"] == 1
        assert counters["retries"] == 1  # the refresh retry is counted
        assert counters["giveups"] == 0
        assert elapsed < 0.4  # no backoff sleep before the refresh retry
        for breaker in stats["breakers"].values():
            assert breaker["state"] == "closed"
            assert breaker["opened_total"] == 0

    def test_refresh_codes_exhaust_attempts_eventually(self):
        """A server that answers the refresh code forever must not loop:
        attempts are still bounded by the policy."""

        async def main():
            async def handle(reader, writer):
                while True:
                    line = await reader.readline()
                    if not line:
                        break
                    request = json.loads(line)
                    writer.write(
                        json.dumps(
                            {
                                "id": request["id"],
                                "ok": False,
                                "error": {"code": "stale_map", "message": ""},
                            }
                        ).encode()
                        + b"\n"
                    )
                    await writer.drain()

            server = await asyncio.start_server(handle, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            client = ResilientClient(
                [("127.0.0.1", port)],
                policy=RetryPolicy(
                    attempts=3, attempt_timeout=2.0, backoff_base=0.01
                ),
                refresh_codes=frozenset({"stale_map"}),
            )
            try:
                with pytest.raises(ClientError) as info:
                    await client.call({"op": "DIST"})
                return str(info.value), dict(client.counters)
            finally:
                await client.close()
                server.close()
                await server.wait_closed()

        message, counters = run(main())
        assert "stale_map" in message
        assert counters["refreshes"] == 3
        assert counters["giveups"] == 1
