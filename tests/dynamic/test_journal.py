"""The repro-label-journal/1 format: append, replay, torn-tail repair.

The hardening contract (docs/dynamic.md): only the *final* record of a
journal may be forgiven — a torn or corrupt tail is skipped with a
warning — while damage anywhere else, or a record that decodes but
carries an invalid delta, is a strict :class:`JournalError`.  A
truncated file must never raise a traceback; the fuzz test cuts a
valid journal at every byte offset to prove it.
"""

import json
import random
import zlib

import pytest

from repro.core.serialize import dump_labeling
from repro.dynamic import (
    JOURNAL_FORMAT,
    JournalError,
    JournalWriter,
    incremental_relabel,
    read_journal,
    replay_journal,
)
from repro.dynamic.journal import canonical_delta_bytes
from repro.dynamic.rebuild import delta_to_dict

from tests.dynamic.conftest import EPSILON, fresh_case
from tests.dynamic.test_rebuild import random_reweight


@pytest.fixture
def journal_path(tmp_path):
    return tmp_path / "journal.jsonl"


def write_journal(path, updates=4, case="grid-greedy", seed=17):
    """A valid journal of *updates* deltas; returns the mutated labeling."""
    graph, _, labeling = fresh_case(case)
    rng = random.Random(seed)
    with JournalWriter(path, epsilon=EPSILON, source="test") as journal:
        for _ in range(updates):
            delta = incremental_relabel(labeling, random_reweight(rng, graph))
            journal.append(delta)
    return labeling


class TestRoundTrip:
    def test_replay_reproduces_the_updated_labels(self, journal_path):
        updated = write_journal(journal_path, updates=5)
        read = read_journal(journal_path)
        assert read.epsilon == EPSILON
        assert read.last_epoch == 5 and not read.warnings
        _, _, pristine = fresh_case("grid-greedy")
        assert replay_journal(read, pristine) == 5
        assert dump_labeling(pristine) == dump_labeling(updated)

    def test_epochs_are_contiguous_from_one(self, journal_path):
        write_journal(journal_path, updates=3)
        read = read_journal(journal_path)
        assert [d.epoch for d in read.deltas] == [1, 2, 3]

    def test_writer_reopen_continues_the_chain(self, journal_path):
        labeling = write_journal(journal_path, updates=2)
        rng = random.Random(99)
        with JournalWriter(journal_path, epsilon=EPSILON) as journal:
            delta = incremental_relabel(
                labeling, random_reweight(rng, labeling.graph)
            )
            assert journal.append(delta) == 3
        assert read_journal(journal_path).last_epoch == 3

    def test_epsilon_mismatch_is_strict(self, journal_path):
        write_journal(journal_path)
        with pytest.raises(JournalError):
            JournalWriter(journal_path, epsilon=0.5)
        read = read_journal(journal_path)
        _, _, pristine = fresh_case("delaunay-planar")  # epsilon matches...
        pristine.epsilon = 0.5  # ...but force a disagreement
        with pytest.raises(JournalError):
            replay_journal(read, pristine)

    def test_replay_against_wrong_base_graph_detected(self, journal_path):
        write_journal(journal_path)
        read = read_journal(journal_path)
        _, _, pristine = fresh_case("grid-greedy")
        first = read.deltas[0].update
        pristine.graph.add_edge(
            first.u, first.v, float(pristine.graph.weight(first.u, first.v)) + 9.0
        )
        with pytest.raises(JournalError):
            replay_journal(read, pristine)


class TestTailLeniency:
    def test_torn_tail_is_skipped_with_a_warning(self, journal_path):
        write_journal(journal_path, updates=4)
        data = journal_path.read_bytes()
        journal_path.write_bytes(data[: len(data) - 10])
        read = read_journal(journal_path)
        assert len(read.deltas) == 3 and read.last_epoch == 3
        assert len(read.warnings) == 1

    def test_corrupt_tail_crc_is_skipped(self, journal_path):
        write_journal(journal_path, updates=3)
        lines = journal_path.read_bytes().splitlines()
        record = json.loads(lines[-1])
        record["crc"] = (record["crc"] + 1) % (1 << 32)
        lines[-1] = json.dumps(record, sort_keys=True).encode()
        journal_path.write_bytes(b"\n".join(lines) + b"\n")
        read = read_journal(journal_path)
        assert len(read.deltas) == 2 and len(read.warnings) == 1

    def test_mid_journal_damage_is_strict(self, journal_path):
        write_journal(journal_path, updates=4)
        lines = journal_path.read_bytes().splitlines()
        lines[2] = b'{"not": "a record"}'
        journal_path.write_bytes(b"\n".join(lines) + b"\n")
        with pytest.raises(JournalError):
            read_journal(journal_path)

    def test_crc_valid_but_invalid_delta_is_strict_even_at_tail(
        self, journal_path
    ):
        write_journal(journal_path, updates=2)
        lines = journal_path.read_bytes().splitlines()
        body = json.loads(lines[-1])["delta"]
        body["w"] = -1.0  # decodes fine, invalid as a delta
        encoded = canonical_delta_bytes(body)
        record = {"crc": zlib.crc32(encoded), "delta": body}
        lines[-1] = json.dumps(record, sort_keys=True).encode()
        journal_path.write_bytes(b"\n".join(lines) + b"\n")
        with pytest.raises(JournalError):
            read_journal(journal_path)

    def test_writer_reopen_truncates_the_tear(self, journal_path):
        labeling = write_journal(journal_path, updates=3)
        data = journal_path.read_bytes()
        journal_path.write_bytes(data[: len(data) - 7])
        with JournalWriter(journal_path, epsilon=EPSILON) as journal:
            rng = random.Random(5)
            delta = incremental_relabel(
                labeling, random_reweight(rng, labeling.graph)
            )
            # The torn epoch-3 record was dropped, so the next is 3.
            assert journal.append(delta) == 3
        read = read_journal(journal_path)
        assert read.last_epoch == 3 and not read.warnings


class TestTruncationFuzz:
    def test_every_truncation_point_reads_without_a_traceback(
        self, journal_path
    ):
        write_journal(journal_path, updates=3)
        data = journal_path.read_bytes()
        header_end = data.index(b"\n") + 1
        for cut in range(len(data) + 1):
            journal_path.write_bytes(data[:cut])
            if cut < header_end:
                # Any damage to the header itself is strict.
                with pytest.raises(JournalError):
                    read_journal(journal_path)
                continue
            read = read_journal(journal_path)
            # A clean prefix of the original deltas, in epoch order.
            assert [d.epoch for d in read.deltas] == list(
                range(1, len(read.deltas) + 1)
            )
            assert read.valid_bytes <= cut

    def test_garbage_bytes_never_traceback(self, journal_path):
        write_journal(journal_path, updates=2)
        data = bytearray(journal_path.read_bytes())
        rng = random.Random(0)
        for _ in range(40):
            corrupt = bytearray(data)
            pos = rng.randrange(len(corrupt))
            corrupt[pos] = rng.randrange(256)
            journal_path.write_bytes(bytes(corrupt))
            try:
                read_journal(journal_path)
            except JournalError:
                pass  # strict rejection is fine; a traceback is not
