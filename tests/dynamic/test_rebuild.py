"""Incremental relabeling: byte-identical to a from-scratch rebuild."""

import random

import pytest

from repro.core import build_labeling
from repro.core.serialize import dump_labeling
from repro.dynamic import (
    DeltaError,
    DynamicError,
    EdgeUpdate,
    apply_delta_to_labels,
    delta_from_dict,
    delta_to_dict,
    incremental_relabel,
)

from tests.dynamic.conftest import CASES, EPSILON, fresh_case


def random_reweight(rng, graph):
    edges = sorted(graph.edges(), key=repr)
    u, v, w = edges[rng.randrange(len(edges))]
    new_w = round(float(w) * rng.uniform(0.5, 2.0), 9)
    if new_w == float(w) or new_w <= 0:
        new_w = float(w) + 0.25
    return EdgeUpdate(u, v, new_w)


@pytest.mark.parametrize("case", sorted(CASES))
class TestByteIdentity:
    def test_five_updates_stay_byte_identical(self, case):
        graph, tree, labeling = fresh_case(case)
        rng = random.Random(13)
        for _ in range(5):
            update = random_reweight(rng, graph)
            delta = incremental_relabel(labeling, update)
            assert delta.epsilon == EPSILON
            # Full rebuild on the *same* tree with the mutated weights.
            fresh = build_labeling(graph, tree, epsilon=EPSILON)
            assert dump_labeling(labeling) == dump_labeling(fresh)

    def test_delta_replays_onto_pristine_labels(self, case):
        graph, tree, labeling = fresh_case(case)
        _, _, pristine = fresh_case(case)
        rng = random.Random(29)
        update = random_reweight(rng, graph)
        delta = incremental_relabel(labeling, update)
        applied, removed = apply_delta_to_labels(pristine.labels, delta)
        assert applied == len(delta.changes)
        assert dump_labeling(pristine) == dump_labeling(labeling)


class TestDeltaCodec:
    def _delta(self):
        graph, _, labeling = fresh_case("grid-greedy")
        rng = random.Random(3)
        return incremental_relabel(labeling, random_reweight(rng, graph))

    def test_round_trip(self):
        delta = self._delta()
        clone = delta_from_dict(delta_to_dict(delta))
        assert delta_to_dict(clone) == delta_to_dict(delta)
        assert clone.update == delta.update
        assert clone.old_weight == delta.old_weight

    def test_strict_decoding(self):
        payload = delta_to_dict(self._delta())
        for breakage in (
            lambda d: d.pop("u"),
            lambda d: d.update(w=float("nan")),
            lambda d: d.update(w=True),
            lambda d: d.update(epoch=-1),
            lambda d: d.update(changes="nope"),
        ):
            broken = {k: (list(v) if isinstance(v, list) else v)
                      for k, v in payload.items()}
            breakage(broken)
            with pytest.raises(DeltaError):
                delta_from_dict(broken)


class TestValidation:
    def test_structural_update_needs_full_rebuild(self):
        _, _, labeling = fresh_case("grid-greedy")
        with pytest.raises(DynamicError):
            incremental_relabel(labeling, EdgeUpdate((0, 0), (5, 5), 1.0))

    def test_bad_weights_rejected(self):
        _, _, labeling = fresh_case("grid-greedy")
        for bad in (0.0, -1.0, float("inf"), float("nan"), True, "x"):
            with pytest.raises(DynamicError):
                incremental_relabel(labeling, EdgeUpdate((0, 0), (0, 1), bad))

    def test_missing_vertex_in_apply_is_strict(self):
        graph, _, labeling = fresh_case("grid-greedy")
        rng = random.Random(3)
        delta = incremental_relabel(labeling, random_reweight(rng, graph))
        if not delta.changes:
            pytest.skip("delta touched no labels")
        with pytest.raises(DeltaError):
            apply_delta_to_labels({}, delta)
        applied, removed = apply_delta_to_labels(
            {}, delta, require_vertices=False
        )
        assert applied == 0
