"""Shared fixtures for the dynamic-update tests.

``fresh_case(name)`` builds a (graph, tree, labeling) triple from
scratch on every call, so one test can hold two independent copies of
the same deterministic world — mutate one incrementally, rebuild the
other from scratch, and compare bytes.
"""

from __future__ import annotations

from repro.core import build_decomposition, build_labeling
from repro.core.engines import (
    CenterBagEngine,
    GreedyPeelingEngine,
    StrongGreedyEngine,
    TreeCentroidEngine,
)
from repro.generators import grid_2d, k_tree, random_delaunay_graph, random_tree
from repro.planar import PlanarCycleEngine

EPSILON = 0.25

# Five engines, each on a family it supports.  Every builder returns a
# brand-new graph object (the factories re-run), so mutations never
# leak between copies.
CASES = {
    "grid-greedy": (
        lambda: grid_2d(6, weight_range=(1.0, 5.0), seed=2),
        lambda: GreedyPeelingEngine(seed=0),
    ),
    "ktree-centerbag": (
        lambda: k_tree(28, 3, weight_range=(1.0, 4.0), seed=5)[0],
        lambda: CenterBagEngine(order="min_degree"),
    ),
    "tree-centroid": (
        lambda: random_tree(40, weight_range=(1.0, 3.0), seed=7),
        lambda: TreeCentroidEngine(),
    ),
    "delaunay-strong": (
        lambda: random_delaunay_graph(32, seed=11)[0],
        lambda: StrongGreedyEngine(seed=0),
    ),
    "delaunay-planar": (
        lambda: random_delaunay_graph(32, seed=11)[0],
        lambda: PlanarCycleEngine(),
    ),
}


def fresh_case(name: str):
    """A brand-new (graph, tree, labeling) for the named case."""
    make_graph, make_engine = CASES[name]
    graph = make_graph()
    tree = build_decomposition(graph, engine=make_engine())
    labeling = build_labeling(graph, tree, epsilon=EPSILON)
    return graph, tree, labeling
