"""Affected-unit computation: the walk matches brute force exactly."""

import pytest

from repro.dynamic import (
    EdgeUpdate,
    affected_units,
    affected_units_bruteforce,
    affected_vertices,
    touched_path_keys,
)
from repro.util.errors import GraphError

from tests.dynamic.conftest import CASES, fresh_case


def edges_of(graph, limit=None):
    edges = sorted(graph.edges(), key=repr)
    return edges if limit is None else edges[:limit]


@pytest.mark.parametrize("case", sorted(CASES))
class TestAffectedUnits:
    def test_matches_bruteforce_on_every_edge(self, case):
        graph, tree, _ = fresh_case(case)
        for u, v, _w in edges_of(graph, limit=40):
            assert affected_units(tree, u, v) == affected_units_bruteforce(
                tree, u, v
            )

    def test_units_form_a_root_down_chain(self, case):
        # The nodes whose residuals contain both endpoints lie on one
        # root-down path of the tree, so their ids are distinct and the
        # unit list is ordered by (node_id, phase_idx).
        graph, tree, _ = fresh_case(case)
        for u, v, _w in edges_of(graph, limit=20):
            units = affected_units(tree, u, v)
            assert units == sorted(units, key=lambda t: (t[0], t[1]))

    def test_affected_vertices_cover_both_endpoints(self, case):
        # The unit that peels the edge's home node contains both
        # endpoints in some residual, so the union must include them.
        graph, tree, _ = fresh_case(case)
        for u, v, _w in edges_of(graph, limit=20):
            vertices = affected_vertices(tree, u, v)
            assert u in vertices and v in vertices

    def test_touched_paths_contain_the_edge(self, case):
        graph, tree, _ = fresh_case(case)
        for u, v, _w in edges_of(graph, limit=20):
            for key in touched_path_keys(tree, u, v):
                path = tree.path_vertices(key)
                consecutive = any(
                    {path[i], path[i + 1]} == {u, v}
                    for i in range(len(path) - 1)
                )
                assert consecutive


class TestValidation:
    def test_self_loop_rejected(self):
        _, tree, _ = fresh_case("grid-greedy")
        with pytest.raises(GraphError):
            affected_units(tree, (0, 0), (0, 0))

    def test_unknown_vertex_rejected(self):
        _, tree, _ = fresh_case("grid-greedy")
        with pytest.raises(GraphError):
            affected_units(tree, (0, 0), "nope")

    def test_edge_update_endpoints(self):
        update = EdgeUpdate(1, 2, 3.5)
        assert update.endpoints() == (1, 2)
        assert update.weight == 3.5
