"""Applying label deltas to serving stores: epoch gating, accounting,
overlay behavior of the mmap-backed store."""

import random

import pytest

from repro.core.serialize import RemoteLabels, dump_labeling
from repro.dynamic import incremental_relabel
from repro.dynamic.rebuild import DeltaError
from repro.serve.store import MappedLabelStore, ShardedLabelStore

from tests.dynamic.conftest import EPSILON, fresh_case
from tests.dynamic.test_rebuild import random_reweight


def updated_world(updates=3, seed=21):
    """(pristine RemoteLabels, mutated labeling, deltas in epoch order)."""
    graph, _, labeling = fresh_case("grid-greedy")
    _, _, pristine = fresh_case("grid-greedy")
    rng = random.Random(seed)
    deltas = []
    for epoch in range(1, updates + 1):
        delta = incremental_relabel(labeling, random_reweight(rng, graph))
        delta.epoch = epoch
        deltas.append(delta)
    remote = RemoteLabels(EPSILON, pristine.labels)
    return remote, labeling, deltas


class TestShardedStoreDelta:
    def test_apply_matches_updated_labels(self):
        remote, updated, deltas = updated_world()
        store = ShardedLabelStore.from_remote("g", remote, num_shards=4)
        for delta in deltas:
            result = store.apply_delta(delta)
            assert result["epoch"] == delta.epoch
        assert store.label_epoch == len(deltas)
        assert store.applied_deltas == len(deltas)
        for v, label in updated.labels.items():
            assert store.label(v).entries == label.entries

    def test_words_accounting_tracks_shards(self):
        remote, updated, deltas = updated_world()
        store = ShardedLabelStore.from_remote("g", remote, num_shards=4)
        for delta in deltas:
            store.apply_delta(delta)
        assert store.total_words == sum(s.words for s in store.shards)
        assert store.total_words == sum(
            label.words for label in updated.labels.values()
        )

    def test_epoch_gaps_and_replays_rejected(self):
        remote, _, deltas = updated_world()
        store = ShardedLabelStore.from_remote("g", remote, num_shards=4)
        with pytest.raises(DeltaError):
            store.apply_delta(deltas[1])  # epoch 2 before 1: a gap
        store.apply_delta(deltas[0])
        with pytest.raises(DeltaError):
            store.apply_delta(deltas[0])  # replay of epoch 1
        assert store.label_epoch == 1

    def test_epsilon_mismatch_rejected(self):
        remote, _, deltas = updated_world()
        store = ShardedLabelStore.from_remote("g", remote, num_shards=4)
        deltas[0].epsilon = 0.5
        with pytest.raises(DeltaError):
            store.apply_delta(deltas[0])

    def test_stats_carry_the_epoch(self):
        remote, _, deltas = updated_world(updates=1)
        store = ShardedLabelStore.from_remote("g", remote, num_shards=4)
        store.apply_delta(deltas[0])
        stats = store.stats()
        assert stats["label_epoch"] == 1
        assert stats["applied_deltas"] == 1


class TestMappedStoreDelta:
    def make_store(self, remote, tmp_path):
        path = tmp_path / "g.bin"
        dump_labeling(remote, path, codec="binary", num_shards=4)
        return MappedLabelStore(path)

    def test_overlay_wins_over_the_mmap(self, tmp_path):
        remote, updated, deltas = updated_world()
        store = self.make_store(remote, tmp_path)
        for delta in deltas:
            store.apply_delta(delta)
        assert store.label_epoch == len(deltas)
        for v, label in updated.labels.items():
            assert store.label(v).entries == label.entries
        store.close()

    def test_untouched_vertices_still_decode_lazily(self, tmp_path):
        remote, updated, deltas = updated_world(updates=1)
        store = self.make_store(remote, tmp_path)
        store.apply_delta(deltas[0])
        touched = {vx for vx, _key, _portals in deltas[0].changes}
        touched.update(vx for vx, _key in deltas[0].removals)
        for v in remote.labels:
            if v not in touched:
                assert store.label(v).entries == remote.labels[v].entries
        stats = store.stats()
        assert stats["overlay_labels"] == len(touched)
        store.close()

    def test_total_words_track_the_overlay(self, tmp_path):
        remote, updated, deltas = updated_world()
        store = self.make_store(remote, tmp_path)
        for delta in deltas:
            store.apply_delta(delta)
        assert store.total_words == sum(
            label.words for label in updated.labels.values()
        )
        store.close()

    def test_lru_cache_never_serves_stale_labels(self, tmp_path):
        remote, updated, deltas = updated_world(updates=1)
        store = MappedLabelStore(
            (tmp_path / "c.bin", dump_labeling(
                remote, tmp_path / "c.bin", codec="binary", num_shards=4
            ))[0],
            label_cache=64,
        )
        # Warm the LRU with every label, then apply the delta.
        for v in remote.labels:
            store.label(v)
        store.apply_delta(deltas[0])
        for v, label in updated.labels.items():
            assert store.label(v).entries == label.entries
        store.close()
