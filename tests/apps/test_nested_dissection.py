import pytest

from repro.apps import elimination_fill_in, nested_dissection_order
from repro.core import build_decomposition
from repro.generators import grid_2d, random_delaunay_graph, random_tree
from repro.graphs import Graph
from repro.treedecomp import min_degree_order
from repro.util.errors import GraphError


class TestOrder:
    def test_is_permutation(self):
        g = grid_2d(7)
        order = nested_dissection_order(g)
        assert sorted(order, key=repr) == sorted(g.vertices(), key=repr)

    def test_separators_come_after_their_regions(self):
        g = grid_2d(6)
        tree = build_decomposition(g)
        order = nested_dissection_order(g, tree=tree)
        position = {v: i for i, v in enumerate(order)}
        for node in tree.nodes:
            sep = node.separator.vertices()
            below = set(node.vertices) - sep
            if not below:
                continue
            assert max(position[v] for v in below) < min(
                position[v] for v in sep
            ) or all(
                # Vertices of sibling subtrees may interleave; the
                # invariant is per subtree: every vertex strictly below
                # this node is eliminated before this node's separator.
                position[v] < min(position[s] for s in sep)
                for v in below
            )

    def test_precomputed_tree_reused(self):
        g = random_tree(40, seed=1)
        tree = build_decomposition(g)
        a = nested_dissection_order(g, tree=tree)
        b = nested_dissection_order(g, tree=tree)
        assert a == b


class TestFillIn:
    def test_tree_fill_is_near_linear(self):
        # ND on a tree is not a perfect elimination order (region
        # interiors go before their centroid), but fill stays O(n log n)
        # and in practice tiny.
        g = random_tree(50, seed=2)
        order = nested_dissection_order(g)
        assert elimination_fill_in(g, order) <= g.num_vertices

    def test_leaf_first_order_has_zero_fill_on_trees(self):
        # Sanity for the fill counter itself: a perfect elimination
        # order of a tree creates no fill.
        g = random_tree(50, seed=2)
        order = min_degree_order(g)
        assert elimination_fill_in(g, order) == 0

    def test_bad_order_on_star_fills(self):
        # Eliminating a star's hub first creates a clique on the leaves.
        g = Graph([(0, i) for i in range(1, 8)])
        order = [0] + list(range(1, 8))
        assert elimination_fill_in(g, order) == 7 * 6 // 2

    def test_fill_counts_match_min_degree_style(self):
        g = grid_2d(6)
        nd = elimination_fill_in(g, nested_dissection_order(g))
        md = elimination_fill_in(g, min_degree_order(g))
        # Both are good orders; neither should be catastrophically
        # worse than the other on a small grid.
        assert nd <= 4 * md + 20

    def test_incomplete_order_rejected(self):
        g = grid_2d(3)
        with pytest.raises(GraphError):
            elimination_fill_in(g, [(0, 0)])

    def test_nested_dissection_beats_row_order_on_large_grids(self):
        # The classic asymptotic: banded (row-by-row) elimination of a
        # k x k grid fills Theta(k^3); nested dissection O(k^2 log k).
        # The crossover shows by 16 x 16.
        g = grid_2d(16)
        row_order = sorted(g.vertices())
        nd_order = nested_dissection_order(g)
        assert elimination_fill_in(g, nd_order) < elimination_fill_in(
            g, row_order
        )

    def test_delaunay(self):
        g, _ = random_delaunay_graph(100, seed=3)
        order = nested_dissection_order(g)
        assert elimination_fill_in(g, order) >= 0
