"""Shard splitting and node population on disk."""

from pathlib import Path

import pytest

from repro.cluster.files import (
    node_dir,
    node_shard_files,
    owned_shards,
    populate_nodes,
    shard_path,
    split_labels,
)
from repro.cluster.map import ClusterMap, ClusterMapError
from repro.core.serialize import dump_labeling, load_labeling


@pytest.fixture
def labels_file(remote_labels, tmp_path) -> Path:
    path = tmp_path / "labels.bin"
    dump_labeling(remote_labels, path, codec="binary")
    return path


def build_map(num_shards=8):
    return ClusterMap.build(
        ["n0", "n1", "n2"], num_shards=num_shards, replication=2
    )


class TestSplitLabels:
    def test_union_of_shards_is_the_labeling(self, labels_file, remote_labels, tmp_path):
        cluster_map = build_map()
        written = split_labels(labels_file, tmp_path / "c", cluster_map)
        assert len(written) == cluster_map.num_shards
        merged = {}
        for path in written:
            pack = load_labeling(path)
            assert pack.epsilon == remote_labels.epsilon
            merged.update(pack.labels)
        assert merged == remote_labels.labels

    def test_vertices_land_where_the_router_points(self, labels_file, tmp_path):
        cluster_map = build_map()
        split_labels(labels_file, tmp_path / "c", cluster_map)
        for shard in range(cluster_map.num_shards):
            pack = load_labeling(shard_path(tmp_path / "c", shard))
            for v in pack.labels:
                assert cluster_map.shard_of(v) == shard

    def test_empty_shards_are_valid_packs(self, labels_file, tmp_path):
        # 64 shards over 25 vertices: most packs are empty, all load.
        cluster_map = build_map(num_shards=64)
        written = split_labels(labels_file, tmp_path / "c", cluster_map)
        empties = [p for p in written if not load_labeling(p).labels]
        assert empties  # the scenario actually occurred
        for path in empties:
            assert load_labeling(path).num_labels == 0


class TestPopulateNodes:
    def test_each_node_gets_its_assigned_replicas(self, labels_file, tmp_path):
        cluster_map = build_map()
        root = tmp_path / "c"
        split_labels(labels_file, root, cluster_map)
        placed = populate_nodes(root, cluster_map)
        for node in cluster_map.nodes:
            expected = cluster_map.shards_of_node(node.id)
            assert owned_shards(root, node.id) == expected
            assert len(placed[node.id]) == len(expected)
            for path in node_shard_files(root, node.id):
                assert path.parent == node_dir(root, node.id)

    def test_replica_bytes_match_canonical(self, labels_file, tmp_path):
        cluster_map = build_map()
        root = tmp_path / "c"
        split_labels(labels_file, root, cluster_map)
        populate_nodes(root, cluster_map)
        for node in cluster_map.nodes:
            for shard in cluster_map.shards_of_node(node.id):
                replica = node_dir(root, node.id) / shard_path(root, shard).name
                assert replica.read_bytes() == shard_path(root, shard).read_bytes()

    def test_missing_canonical_refused(self, tmp_path):
        with pytest.raises(ClusterMapError):
            populate_nodes(tmp_path, build_map())

    def test_missing_node_dir_reads_as_empty(self, tmp_path):
        assert node_shard_files(tmp_path, "ghost") == []
        assert owned_shards(tmp_path, "ghost") == ()
