"""ClusterClient against live in-process nodes: routing, failover,
combine fallback, MAP push/refresh — every answer byte-identical to
the offline estimate."""

import asyncio
import itertools

import pytest

from repro.cluster.client import ClusterClient
from repro.cluster.map import ClusterMap
from repro.serve.client import RequestFailed, ResilientClient, RetryPolicy

from tests.cluster.conftest import start_cluster, stop_cluster


def run(coro):
    return asyncio.run(coro)


def sample_pairs(remote_labels, count=40):
    vertices = sorted(remote_labels.vertices(), key=repr)
    pairs = [
        (u, v) for u, v in itertools.combinations(vertices, 2) if u != v
    ]
    return pairs[:count]


def fast_policy(attempts=4):
    return RetryPolicy(attempts=attempts, attempt_timeout=2.0, backoff_base=0.01)


class TestRoutedPath:
    def test_dist_matches_offline_everywhere(self, remote_labels):
        async def main():
            live, servers = await start_cluster(remote_labels)
            client = ClusterClient(live, policy=fast_policy())
            try:
                results = []
                for u, v in sample_pairs(remote_labels):
                    response = await client.dist(u, v)
                    results.append(((u, v), response))
                return results, dict(client.counters)
            finally:
                await client.close()
                await stop_cluster(servers)

        results, counters = run(main())
        for (u, v), response in results:
            assert response["estimate"] == remote_labels.estimate(u, v)
            assert "combined" not in response  # single-node answers
        # With N=3, R=2 every intersection is non-empty: all routed.
        assert counters["routed"] == len(results)
        assert counters["combined"] == 0

    def test_batch_matches_offline(self, remote_labels):
        pairs = sample_pairs(remote_labels, 25)

        async def main():
            live, servers = await start_cluster(remote_labels)
            client = ClusterClient(live, policy=fast_policy())
            try:
                return await client.batch(pairs)
            finally:
                await client.close()
                await stop_cluster(servers)

        response = run(main())
        assert response["ok"] and len(response["results"]) == len(pairs)
        for (u, v), item in zip(pairs, response["results"]):
            assert item["ok"]
            assert item["estimate"] == remote_labels.estimate(u, v)

    def test_unknown_vertex_is_a_permanent_answer(self, remote_labels):
        async def main():
            live, servers = await start_cluster(remote_labels)
            client = ClusterClient(live, policy=fast_policy())
            try:
                with pytest.raises(RequestFailed) as info:
                    await client.dist((0, 0), (99, 99))
                return info.value.code
            finally:
                await client.close()
                await stop_cluster(servers)

        assert run(main()) == "unknown_vertex"


class TestFailover:
    def test_killed_node_is_absorbed(self, remote_labels):
        """Shut one node down cold; every query must still answer
        byte-identically (replica failover or label-combine)."""

        async def main():
            live, servers = await start_cluster(remote_labels)
            client = ClusterClient(live, policy=fast_policy())
            try:
                victim = live.nodes[0].id
                await servers[victim].shutdown()
                results = []
                for u, v in sample_pairs(remote_labels):
                    response = await client.dist(u, v)
                    results.append(((u, v), response))
                return results, dict(client.counters)
            finally:
                await client.close()
                await stop_cluster(servers)

        results, counters = run(main())
        for (u, v), response in results:
            assert response["estimate"] == remote_labels.estimate(u, v)
        # Both mechanisms did real work across the sample: some pairs'
        # only intersection node was the victim (combine), others had a
        # surviving intersection replica (routed).
        assert counters["routed"] > 0
        assert counters["combined"] > 0

    def test_batch_survives_a_dead_node(self, remote_labels):
        pairs = sample_pairs(remote_labels, 30)

        async def main():
            live, servers = await start_cluster(remote_labels)
            client = ClusterClient(live, policy=fast_policy())
            try:
                await servers[live.nodes[1].id].shutdown()
                return await client.batch(pairs)
            finally:
                await client.close()
                await stop_cluster(servers)

        response = run(main())
        for (u, v), item in zip(pairs, response["results"]):
            assert item["ok"], item
            assert item["estimate"] == remote_labels.estimate(u, v)


class TestEpochRefresh:
    def test_stale_client_refreshes_and_answers(self, remote_labels):
        """A client born with an outdated epoch gets stale_map, adopts
        the newer map via the refresh hook, and answers correctly."""

        async def main():
            live, servers = await start_cluster(remote_labels)
            stale = live.with_epoch(live.epoch - 1)
            client = ClusterClient(stale, policy=fast_policy())
            try:
                u, v = sample_pairs(remote_labels, 1)[0]
                response = await client.dist(u, v)
                return (
                    response,
                    (u, v),
                    dict(client.counters),
                    client.map.epoch,
                    live.epoch,
                )
            finally:
                await client.close()
                await stop_cluster(servers)

        response, (u, v), counters, client_epoch, live_epoch = run(main())
        assert response["estimate"] == remote_labels.estimate(u, v)
        assert client_epoch == live_epoch  # the fresh map was adopted
        assert counters["map_installs"] >= 1

    def test_map_push_is_epoch_gated(self, remote_labels):
        """MAP set accepts only strictly newer epochs; MAP get serves
        the installed map."""

        async def main():
            live, servers = await start_cluster(remote_labels)
            node = live.nodes[0]
            rc = ResilientClient([node.address], policy=fast_policy(1))
            try:
                got = await rc.call({"op": "MAP"})
                stale = live.with_epoch(live.epoch)  # not newer
                with pytest.raises(RequestFailed) as rejected:
                    await rc.call(
                        {"op": "MAP", "action": "set", "map": stale.to_dict()}
                    )
                newer = live.with_epoch(live.epoch + 3)
                accepted = await rc.call(
                    {"op": "MAP", "action": "set", "map": newer.to_dict()}
                )
                after = await rc.call({"op": "MAP"})
                return got, rejected.value.code, accepted, after
            finally:
                await rc.close()
                await stop_cluster(servers)

        got, rejected_code, accepted, after = run(main())
        assert ClusterMap.from_dict(got["map"]) is not None
        assert got["epoch"] == got["map"]["epoch"]
        assert rejected_code == "stale_map"
        assert accepted["installed"] is True
        assert after["epoch"] == got["epoch"] + 3


class TestClusterStats:
    def test_stats_fan_out_sums_counters(self, remote_labels):
        async def main():
            live, servers = await start_cluster(remote_labels)
            client = ClusterClient(live, policy=fast_policy())
            try:
                for u, v in sample_pairs(remote_labels, 10):
                    await client.dist(u, v)
                return await client.call({"op": "STATS"}), len(live.nodes)
            finally:
                await client.close()
                await stop_cluster(servers)

        stats, nodes = run(main())
        assert stats["cluster"]["nodes"] == nodes
        assert stats["counters"]["requests"] >= 10
        assert set(stats["nodes"]) == {"n0", "n1", "n2"}
