"""Cluster-layer fixtures: one labeling plus an in-process cluster.

``start_cluster`` builds a real N-node cluster without subprocesses:
one :class:`OracleServer` per node on an ephemeral port, each holding
exactly the shard stores its map assignment says it should, each
cluster-aware via :class:`ClusterNodeState`.  Tests get live failover
and MAP semantics at unit-test speed; the subprocess path is covered
by ``test_local.py`` and the CI cluster-smoke job.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import pytest

from repro.cluster.map import ClusterMap, ClusterNodeState, store_name_for_shard
from repro.core import build_decomposition, build_labeling
from repro.core.serialize import RemoteLabels, dump_labeling, load_labeling
from repro.generators import grid_2d
from repro.serve import OracleServer, ShardedLabelStore, StoreCatalog


@pytest.fixture(scope="session")
def remote_labels() -> RemoteLabels:
    graph = grid_2d(5)  # tuple vertices: exercises the tagged encoding
    labeling = build_labeling(graph, build_decomposition(graph), epsilon=0.25)
    return load_labeling(dump_labeling(labeling))


def node_catalog(
    remote: RemoteLabels, cluster_map: ClusterMap, node_id: str
) -> StoreCatalog:
    """The shard stores node *node_id* should hold under *cluster_map*."""
    catalog = StoreCatalog()
    for shard in cluster_map.shards_of_node(node_id):
        subset = {
            v: label
            for v, label in remote.labels.items()
            if cluster_map.shard_of(v) == shard
        }
        catalog.add(
            ShardedLabelStore.from_remote(
                store_name_for_shard(shard),
                RemoteLabels(epsilon=remote.epsilon, labels=subset),
                num_shards=2,
            )
        )
    return catalog


async def start_cluster(
    remote: RemoteLabels,
    node_ids: Sequence[str] = ("n0", "n1", "n2"),
    *,
    num_shards: int = 8,
    replication: int = 2,
    seed: int = 0,
) -> Tuple[ClusterMap, Dict[str, OracleServer]]:
    """Start one in-process server per node; returns the live map
    (real addresses, epoch bumped, installed on every node) and the
    servers by node id.  Callers shut the servers down."""
    base = ClusterMap.build(
        list(node_ids),
        num_shards=num_shards,
        replication=replication,
        seed=seed,
        epsilon=remote.epsilon,
    )
    servers: Dict[str, OracleServer] = {}
    addresses: Dict[str, Tuple[str, int]] = {}
    try:
        for node in base.nodes:
            state = ClusterNodeState(
                node_id=node.id,
                map=base,
                owned=frozenset(base.shards_of_node(node.id)),
            )
            server = OracleServer(
                node_catalog(remote, base, node.id), port=0, cluster=state
            )
            await server.start()
            servers[node.id] = server
            addresses[node.id] = ("127.0.0.1", server.port)
    except BaseException:
        for server in servers.values():
            await server.shutdown()
        raise
    live = base.with_addresses(addresses)
    for server in servers.values():
        server.cluster.install(live)
    return live, servers


async def stop_cluster(servers: Dict[str, OracleServer]) -> None:
    for server in servers.values():
        await server.shutdown()
