"""ClusterMap: placement determinism, validation, wire round-trips."""

import pytest

from repro.cluster.map import (
    FORMAT,
    ClusterMap,
    ClusterMapError,
    ClusterNodeState,
    NodeInfo,
    store_name_for_shard,
)


def build(nodes=("n0", "n1", "n2"), shards=16, r=2, seed=0, **kwargs):
    return ClusterMap.build(
        list(nodes), num_shards=shards, replication=r, seed=seed, **kwargs
    )


class TestBuild:
    def test_deterministic_in_all_inputs(self):
        assert build().assignments == build().assignments
        assert build(seed=1).assignments != build(seed=0).assignments

    def test_every_shard_gets_r_distinct_replicas(self):
        cluster_map = build(shards=32, r=2)
        for replicas in cluster_map.assignments:
            assert len(replicas) == 2
            assert len(set(replicas)) == 2

    def test_rendezvous_stability_under_node_addition(self):
        # Adding a node must never move a shard between two *surviving*
        # nodes: a shard's replica set changes only by gaining the new
        # node (that is the property the rebalance planner relies on).
        before = build(("n0", "n1", "n2"), shards=64, r=2)
        after = build(("n0", "n1", "n2", "n3"), shards=64, r=2)
        for shard in range(64):
            lost = set(before.assignments[shard]) - set(after.assignments[shard])
            gained = set(after.assignments[shard]) - set(before.assignments[shard])
            assert gained <= {"n3"}
            assert len(lost) == len(gained)

    def test_replication_bounds(self):
        with pytest.raises(ClusterMapError):
            build(r=4)  # more replicas than nodes
        with pytest.raises(ClusterMapError):
            build(r=0)

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ClusterMapError):
            build(("a", "a", "b"))


class TestRouting:
    def test_shard_of_agrees_with_replica_sets(self):
        cluster_map = build()
        for v in [(0, 0), (3, 4), "x", 17]:
            shard = cluster_map.shard_of(v)
            assert cluster_map.nodes_for(v) == cluster_map.replicas_for(shard)

    def test_shards_of_node_partitions_by_replication(self):
        cluster_map = build(shards=16, r=2)
        total = sum(
            len(cluster_map.shards_of_node(n.id)) for n in cluster_map.nodes
        )
        assert total == 16 * 2

    def test_replicas_for_range_checked(self):
        with pytest.raises(ClusterMapError):
            build(shards=4).replicas_for(4)


class TestSerialization:
    def test_round_trip(self):
        cluster_map = build(epsilon=0.25)
        again = ClusterMap.from_dict(cluster_map.to_dict())
        assert again == cluster_map
        assert again.epsilon == 0.25

    def test_dump_load(self, tmp_path):
        path = tmp_path / "map.json"
        cluster_map = build()
        cluster_map.dump(path)
        assert ClusterMap.load(path) == cluster_map

    def test_format_stamp_required(self):
        payload = build().to_dict()
        payload["format"] = "repro-cluster-map/9"
        with pytest.raises(ClusterMapError):
            ClusterMap.from_dict(payload)

    @pytest.mark.parametrize(
        "key,value",
        [
            ("epoch", True),
            ("epoch", "2"),
            ("replication", 1.5),
            ("num_shards", 3),
            ("nodes", []),
            ("assignments", []),
        ],
    )
    def test_bad_fields_rejected(self, key, value):
        payload = build().to_dict()
        payload[key] = value
        with pytest.raises(ClusterMapError):
            ClusterMap.from_dict(payload)

    def test_unknown_replica_rejected(self):
        payload = build().to_dict()
        payload["assignments"][0] = ["n0", "ghost"]
        with pytest.raises(ClusterMapError):
            ClusterMap.from_dict(payload)


class TestEvolution:
    def test_with_addresses_bumps_epoch_and_keeps_assignments(self):
        cluster_map = build()
        live = cluster_map.with_addresses({"n0": ("127.0.0.1", 7001)})
        assert live.epoch == cluster_map.epoch + 1
        assert live.assignments == cluster_map.assignments
        assert live.node("n0").port == 7001
        assert live.node("n1").port == 0  # untouched

    def test_with_addresses_unknown_node(self):
        with pytest.raises(ClusterMapError):
            build().with_addresses({"ghost": ("h", 1)})


class TestNodeState:
    def test_membership_enforced(self):
        cluster_map = build()
        with pytest.raises(ClusterMapError):
            ClusterNodeState(node_id="ghost", map=cluster_map, owned=frozenset())

    def test_install_requires_membership(self):
        cluster_map = build()
        state = ClusterNodeState(
            node_id="n0", map=cluster_map, owned=frozenset({0, 1})
        )
        smaller = build(("n1", "n2"), r=2)
        with pytest.raises(ClusterMapError):
            state.install(smaller)
        newer = cluster_map.with_epoch(5)
        state.install(newer)
        assert state.epoch == 5

    def test_store_name_convention(self):
        assert store_name_for_shard(7) == "shard-0007"
        cluster_map = build()
        state = ClusterNodeState(node_id="n0", map=cluster_map, owned={3})
        assert state.store_name(3) == "shard-0003"
        assert state.owned == frozenset({3})


def test_node_info_wire_shape():
    node = NodeInfo.from_dict({"id": "n0", "host": "h", "port": 7001})
    assert node.address == ("h", 7001)
    assert NodeInfo.from_dict(node.to_dict()) == node
    with pytest.raises(ClusterMapError):
        NodeInfo.from_dict({"id": "n0", "port": True})
    with pytest.raises(ClusterMapError):
        NodeInfo.from_dict({"id": ""})


def test_format_constant():
    assert FORMAT == "repro-cluster-map/1"
