"""LocalCluster end-to-end: real ``repro serve`` subprocesses on
ephemeral ports, the live-map push, a mid-session SIGKILL, and the
drain protocol.  One scenario, kept small — broader chaos coverage
lives in ``repro chaos --cluster`` (CI's cluster-smoke job)."""

import asyncio
import itertools
import os
from pathlib import Path

import pytest

from repro.cluster.client import ClusterClient
from repro.cluster.local import ClusterUpError, LocalCluster, init_cluster
from repro.core.serialize import dump_labeling
from repro.serve.client import RetryPolicy

SRC = Path(__file__).resolve().parents[2] / "src"


@pytest.fixture
def cluster_root(remote_labels, tmp_path, monkeypatch):
    # Children run `python -m repro.cli`; make sure they can import it
    # no matter how this pytest process itself was launched.
    existing = os.environ.get("PYTHONPATH", "")
    monkeypatch.setenv(
        "PYTHONPATH", str(SRC) + (os.pathsep + existing if existing else "")
    )
    labels = tmp_path / "labels.bin"
    dump_labeling(remote_labels, labels, codec="binary")
    root = tmp_path / "cluster"
    init_cluster(labels, root, nodes=2, replication=2, num_shards=4)
    return root


def test_up_query_kill_drain(cluster_root, remote_labels):
    vertices = sorted(remote_labels.vertices(), key=repr)
    pairs = [p for p in itertools.combinations(vertices, 2)][:10]

    async def main():
        cluster = LocalCluster(cluster_root, cache=64, ready_timeout=90.0)
        live = await cluster.start()
        client = ClusterClient(
            live,
            policy=RetryPolicy(
                attempts=5, attempt_timeout=5.0, backoff_base=0.01
            ),
        )
        try:
            assert live.epoch == 2  # authored epoch 1 + address bump
            assert all(node.port != 0 for node in live.nodes)
            healthy = [await client.dist(u, v) for u, v in pairs[:5]]
            victim = cluster.victim_for(0)
            cluster.kill(victim)
            degraded = [await client.dist(u, v) for u, v in pairs[5:]]
        finally:
            await client.close()
            results = await cluster.stop()
        return healthy, degraded, victim, results

    healthy, degraded, victim, results = asyncio.run(main())
    for (u, v), response in zip(pairs, healthy + degraded):
        assert response["estimate"] == remote_labels.estimate(u, v)
    assert results[victim]["killed"] and not results[victim]["drained"]
    survivor = next(node for node in results if node != victim)
    assert results[survivor]["drained"]
    assert results[survivor]["returncode"] == 0


def test_uninitialized_root_refused(tmp_path):
    with pytest.raises(ClusterUpError):
        LocalCluster(tmp_path / "missing")
