"""Label deltas across a cluster: per-node slicing in
:class:`ClusterStoreView` and the client-side DELTA fan-out.

The pusher sends the *same* whole-graph delta to every node; each node
applies only the entries whose vertex routes to a shard it owns and
counts the rest as skipped.  With N nodes and replication R, every
touched entry lands on exactly R nodes — the view tests below check
that conservation law directly, and the fan-out tests check the live
path: all nodes advance together, a dead node is reported (not papered
over), and post-push answers match the updated labeling byte-exactly.
"""

import asyncio
import random

import pytest

from repro.cluster.client import ClusterClient
from repro.cluster.map import ClusterMap, ClusterNodeState
from repro.core import build_decomposition, build_labeling
from repro.dynamic import incremental_relabel
from repro.dynamic.rebuild import DeltaError, delta_to_dict
from repro.generators import grid_2d
from repro.serve.store import ClusterStoreView, ShardNotOwned

from tests.cluster.conftest import node_catalog, start_cluster, stop_cluster
from tests.cluster.test_client import fast_policy, sample_pairs
from tests.dynamic.test_rebuild import random_reweight

NODE_IDS = ("n0", "n1", "n2")


def run(coro):
    return asyncio.run(coro)


def updated_world(updates=2, seed=13):
    """(updated labeling, deltas) on the conftest's grid_2d(5) world."""
    graph = grid_2d(5)
    labeling = build_labeling(graph, build_decomposition(graph), epsilon=0.25)
    rng = random.Random(seed)
    deltas = []
    for epoch in range(1, updates + 1):
        delta = incremental_relabel(labeling, random_reweight(rng, graph))
        delta.epoch = epoch
        deltas.append(delta)
    return labeling, deltas


def node_views(remote, *, num_shards=8, replication=2, seed=0):
    """One offline ClusterStoreView per node, same placement as
    ``start_cluster`` (no sockets — pure slicing semantics)."""
    cluster_map = ClusterMap.build(
        list(NODE_IDS),
        num_shards=num_shards,
        replication=replication,
        seed=seed,
        epsilon=remote.epsilon,
    )
    views = {}
    for node_id in NODE_IDS:
        state = ClusterNodeState(
            node_id=node_id,
            map=cluster_map,
            owned=frozenset(cluster_map.shards_of_node(node_id)),
        )
        views[node_id] = ClusterStoreView(
            node_catalog(remote, cluster_map, node_id), state
        )
    return cluster_map, views


class TestClusterViewDelta:
    def test_each_node_applies_exactly_its_replicated_slice(
        self, remote_labels
    ):
        _, deltas = updated_world()
        _, views = node_views(remote_labels, replication=2)
        for delta in deltas:
            touched = len(delta.changes) + len(delta.removals)
            applied = skipped = 0
            for view in views.values():
                result = view.apply_delta(delta)
                assert result["epoch"] == delta.epoch
                applied += result["changes"] + result["removals"]
                skipped += result["skipped"]
            # R copies applied, N-R skipped, nothing lost or invented.
            assert applied == 2 * touched
            assert skipped == (len(NODE_IDS) - 2) * touched
            assert applied + skipped == len(NODE_IDS) * touched

    def test_owned_vertices_serve_the_updated_labels(self, remote_labels):
        updated, deltas = updated_world()
        _, views = node_views(remote_labels)
        for view in views.values():
            for delta in deltas:
                view.apply_delta(delta)
        for v, label in updated.labels.items():
            holders = 0
            for view in views.values():
                try:
                    served = view.label(v)
                except ShardNotOwned:
                    continue
                holders += 1
                assert served.entries == label.entries
            assert holders == 2  # replication

    def test_epoch_sequence_is_per_view(self, remote_labels):
        _, deltas = updated_world()
        _, views = node_views(remote_labels)
        first = views["n0"]
        with pytest.raises(DeltaError):
            first.apply_delta(deltas[1])  # epoch 2 before 1
        first.apply_delta(deltas[0])
        with pytest.raises(DeltaError):
            first.apply_delta(deltas[0])  # the view itself is strict
        assert first.label_epoch == 1
        # The other views never moved: epochs are per node, not shared.
        assert views["n1"].label_epoch == 0
        assert views["n2"].label_epoch == 0


class TestClusterDeltaFanOut:
    def test_push_advances_every_node_together(self, remote_labels):
        updated, deltas = updated_world()

        async def main():
            live, servers = await start_cluster(remote_labels)
            client = ClusterClient(live, policy=fast_policy())
            try:
                pushes = [
                    await client.call(
                        {
                            "op": "DELTA",
                            "action": "apply",
                            "delta": delta_to_dict(delta),
                        }
                    )
                    for delta in deltas
                ]
                status = await client.call({"op": "DELTA"})
                answers = []
                for u, v in sample_pairs(remote_labels, 20):
                    response = await client.dist(u, v)
                    answers.append(((u, v), response["estimate"]))
                return pushes, status, answers, dict(client.counters)
            finally:
                await client.close()
                await stop_cluster(servers)

        pushes, status, answers, counters = run(main())
        for push, delta in zip(pushes, deltas):
            assert push["ok"] and push["applied"]
            assert push["epoch"] == delta.epoch
            assert push["applied_nodes"] == len(NODE_IDS)
            assert push["failed_nodes"] == 0
            assert set(push["nodes"]) == set(NODE_IDS)
        # status routes to any single node; they all agree by now.
        assert status["epoch"] == len(deltas)
        for (u, v), estimate in answers:
            assert estimate == updated.estimate(u, v)
        assert counters["delta_pushes"] == len(deltas)

    def test_dead_node_is_reported_not_papered_over(self, remote_labels):
        _, deltas = updated_world(updates=1)

        async def main():
            live, servers = await start_cluster(remote_labels)
            client = ClusterClient(live, policy=fast_policy(1))
            try:
                await servers["n2"].shutdown()
                return await client.call(
                    {
                        "op": "DELTA",
                        "action": "apply",
                        "delta": delta_to_dict(deltas[0]),
                    }
                )
            finally:
                await client.close()
                await stop_cluster(servers)

        push = run(main())
        assert push["ok"] is False and push["applied"] is False
        assert push["applied_nodes"] == 2
        assert push["failed_nodes"] == 1
        assert push["nodes"]["n2"]["ok"] is False
        for node_id in ("n0", "n1"):
            assert push["nodes"][node_id]["epoch"] == 1

    def test_bad_delta_fails_on_every_node(self, remote_labels):
        _, deltas = updated_world(updates=1)
        deltas[0].epoch = 5  # skips ahead: stale everywhere

        async def main():
            live, servers = await start_cluster(remote_labels)
            client = ClusterClient(live, policy=fast_policy(1))
            try:
                return await client.call(
                    {
                        "op": "DELTA",
                        "action": "apply",
                        "delta": delta_to_dict(deltas[0]),
                    }
                )
            finally:
                await client.close()
                await stop_cluster(servers)

        push = run(main())
        assert push["ok"] is False
        assert push["failed_nodes"] == len(NODE_IDS)
        for response in push["nodes"].values():
            assert response["error"]["code"] == "stale_delta"
