"""Rebalance planning: minimal diffs and file-level application."""

import pytest

from repro.cluster.files import node_dir, shard_path, split_labels
from repro.cluster.map import ClusterMap, ClusterMapError, store_name_for_shard
from repro.cluster.plan import apply_plan, diff_maps
from repro.core.serialize import dump_labeling


def build(nodes, shards=16, r=2, epoch=1):
    return ClusterMap.build(
        list(nodes), num_shards=shards, replication=r, epoch=epoch
    )


class TestDiff:
    def test_identical_maps_are_a_noop(self):
        a = build(["n0", "n1", "n2"])
        plan = diff_maps(a, a)
        assert plan.copies == [] and plan.drops == []
        assert plan.moved_shards == 0
        assert plan.new_epoch == a.epoch + 1  # epoch still advances

    def test_adding_a_node_only_copies_to_it(self):
        old = build(["n0", "n1", "n2"], shards=64)
        new = build(["n0", "n1", "n2", "n3"], shards=64)
        plan = diff_maps(old, new)
        assert plan.copies  # n3 gained something
        assert {c.dst for c in plan.copies} == {"n3"}
        # Every copy names a donor that really held the shard before.
        for copy in plan.copies:
            assert copy.src in old.assignments[copy.shard]
        # Drops mirror the copies shard-for-shard (R is unchanged).
        assert sorted(c.shard for c in plan.copies) == sorted(
            d.shard for d in plan.drops
        )

    def test_removing_a_node_finds_surviving_donors(self):
        old = build(["n0", "n1", "n2"], shards=32)
        new = build(["n0", "n1"], shards=32)
        plan = diff_maps(old, new)
        for copy in plan.copies:
            assert copy.src is not None
            assert copy.src in old.assignments[copy.shard]
            assert copy.src in new.assignments[copy.shard]

    def test_shard_count_mismatch_refused(self):
        with pytest.raises(ClusterMapError):
            diff_maps(build(["n0", "n1"], shards=8), build(["n0", "n1"], shards=16))

    def test_new_epoch_never_regresses(self):
        old = build(["n0", "n1"], epoch=7)
        new = build(["n0", "n1"], epoch=2)
        assert diff_maps(old, new).new_epoch == 8

    def test_to_dict_is_json_shaped(self):
        plan = diff_maps(
            build(["n0", "n1", "n2"], shards=8),
            build(["n0", "n1", "n2", "n3"], shards=8),
        )
        payload = plan.to_dict()
        assert set(payload) == {"old_epoch", "new_epoch", "copies", "drops"}
        for copy in payload["copies"]:
            assert set(copy) == {"shard", "dst", "src"}


class TestApply:
    @pytest.fixture
    def root(self, remote_labels, tmp_path):
        labels = tmp_path / "labels.bin"
        dump_labeling(remote_labels, labels, codec="binary")
        root = tmp_path / "c"
        old = build(["n0", "n1", "n2"], shards=8)
        split_labels(labels, root, old)
        from repro.cluster.files import populate_nodes

        populate_nodes(root, old)
        old.dump(root / "cluster-map.json")
        return root, old

    def test_apply_grows_then_map_is_bumped(self, root):
        root, old = root
        new = build(["n0", "n1", "n2", "n3"], shards=8)
        plan = diff_maps(old, new)
        summary = apply_plan(root, plan, new)
        assert summary["copied"] == len(plan.copies)
        assert summary["pruned"] == 0  # no prune unless asked
        for copy in plan.copies:
            name = f"{store_name_for_shard(copy.shard)}.bin"
            assert (node_dir(root, copy.dst) / name).is_file()
            # Copied bytes are the canonical shard, byte-for-byte.
            assert (node_dir(root, copy.dst) / name).read_bytes() == shard_path(
                root, copy.shard
            ).read_bytes()
        # Dropped replicas still on disk (grow before shrink).
        for drop in plan.drops:
            name = f"{store_name_for_shard(drop.shard)}.bin"
            assert (node_dir(root, drop.node) / name).is_file()
        reloaded = ClusterMap.load(root / "cluster-map.json")
        assert reloaded.epoch == plan.new_epoch
        assert reloaded.assignments == new.assignments

    def test_apply_with_prune_deletes_dropped_replicas(self, root):
        root, old = root
        new = build(["n0", "n1", "n2", "n3"], shards=8)
        plan = diff_maps(old, new)
        summary = apply_plan(root, plan, new, prune=True)
        assert summary["pruned"] == len(plan.drops)
        for drop in plan.drops:
            name = f"{store_name_for_shard(drop.shard)}.bin"
            assert not (node_dir(root, drop.node) / name).exists()

    def test_apply_is_idempotent(self, root):
        root, old = root
        new = build(["n0", "n1", "n2", "n3"], shards=8)
        plan = diff_maps(old, new)
        apply_plan(root, plan, new)
        again = apply_plan(root, plan, new)
        assert again["copied"] == 0
        assert again["skipped"] == len(plan.copies)
